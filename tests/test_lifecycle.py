"""Shared lifecycle conformance: one close() contract across the stack.

Since 1.5 every long-lived component — :class:`~repro.Engine`,
:class:`~repro.search.ANNSearcher`,
:class:`~repro.shard.ScatterGatherExecutor` and
:class:`~repro.serve.MicroBatchServer` — implements the same documented
contract:

* ``close()`` is **terminal**: after it returns, every further
  operation raises :class:`~repro.exceptions.ConfigurationError` whose
  message contains ``"closed"``;
* ``close()`` is **idempotent** and safe to race from many threads;
* ``closed`` reports the state;
* the object is a **context manager** whose exit closes it.

The suite is parametrized over one adapter per class so a divergence in
any single implementation fails with that class's name in the test id.
"""

from __future__ import annotations

import asyncio
import threading
from dataclasses import dataclass
from typing import Callable

import numpy as np
import pytest

from repro import Engine, EngineConfig
from repro.exceptions import ConfigurationError
from repro.scan import NaiveScanner
from repro.search import ANNSearcher
from repro.serve import MicroBatchServer
from repro.shard import ScatterGatherExecutor, ShardedIndex


@dataclass
class Adapter:
    """One lifecycle subject: how to make it, use it, and close it."""

    name: str
    make: Callable[[], object]
    use: Callable[[object], None]
    close: Callable[[object], None]
    enter_ctx: Callable[[object], None]


def _make_adapters(dataset, index) -> list[Adapter]:
    queries = dataset.queries[:4]

    def make_engine() -> Engine:
        config = EngineConfig(
            n_partitions=2, max_iter=2, coarse_max_iter=2, executor="thread"
        )
        return Engine.build(dataset.base[:2000], config)

    def make_searcher() -> ANNSearcher:
        return ANNSearcher(index, NaiveScanner())

    def make_scatter() -> ScatterGatherExecutor:
        return ScatterGatherExecutor(
            ShardedIndex.from_index(index, n_shards=2),
            NaiveScanner,
            n_workers=1,
            backend="thread",
        )

    def make_server() -> MicroBatchServer:
        return MicroBatchServer.for_searcher(
            ANNSearcher(index, NaiveScanner()), topk=5, nprobe=1
        )

    def use_server(server: MicroBatchServer) -> None:
        async def roundtrip() -> None:
            async with server:
                result = await server.search(queries[0])
                assert result.ok

        asyncio.run(roundtrip())

    def sync_close(obj) -> None:
        obj.close()

    def sync_ctx(obj) -> None:
        with obj:
            pass

    return [
        Adapter(
            name="Engine",
            make=make_engine,
            use=lambda e: e.search(queries, k=5, nprobe=1),
            close=sync_close,
            enter_ctx=sync_ctx,
        ),
        Adapter(
            name="ANNSearcher",
            make=make_searcher,
            use=lambda s: s.search(queries, topk=5, nprobe=1),
            close=sync_close,
            enter_ctx=sync_ctx,
        ),
        Adapter(
            name="ScatterGatherExecutor",
            make=make_scatter,
            use=lambda x: x.run(queries, topk=5, nprobe=1),
            close=sync_close,
            enter_ctx=sync_ctx,
        ),
        Adapter(
            name="MicroBatchServer",
            make=make_server,
            use=use_server,
            close=sync_close,
            enter_ctx=sync_ctx,
        ),
    ]


@pytest.fixture(
    params=["Engine", "ANNSearcher", "ScatterGatherExecutor",
            "MicroBatchServer"]
)
def adapter(request, dataset, index) -> Adapter:
    adapters = {a.name: a for a in _make_adapters(dataset, index)}
    return adapters[request.param]


class TestLifecycleConformance:
    def test_use_then_close_then_refuse(self, adapter):
        obj = adapter.make()
        adapter.use(obj)
        assert not obj.closed
        adapter.close(obj)
        assert obj.closed
        with pytest.raises(ConfigurationError, match="closed"):
            adapter.use(obj)

    def test_close_is_idempotent(self, adapter):
        obj = adapter.make()
        adapter.close(obj)
        adapter.close(obj)
        adapter.close(obj)
        assert obj.closed

    def test_concurrent_close_is_safe(self, adapter):
        obj = adapter.make()
        adapter.use(obj)
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        errors: list[BaseException] = []

        def racer() -> None:
            try:
                barrier.wait()
                adapter.close(obj)
            except BaseException as exc:  # noqa: BLE001 - recorded
                errors.append(exc)

        threads = [threading.Thread(target=racer) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert obj.closed

    def test_context_manager_closes(self, adapter):
        obj = adapter.make()
        adapter.enter_ctx(obj)
        assert obj.closed
        with pytest.raises(ConfigurationError, match="closed"):
            adapter.use(obj)


class TestServerSpecificLifecycle:
    """Server-only corners the shared grid cannot express."""

    def test_close_while_running_raises(self, index, dataset):
        server = MicroBatchServer.for_searcher(
            ANNSearcher(index, NaiveScanner()), topk=5
        )

        async def scenario() -> None:
            await server.start()
            try:
                with pytest.raises(ConfigurationError, match="running"):
                    server.close()
            finally:
                await server.stop()

        asyncio.run(scenario())
        server.close()  # legal once stopped
        assert server.closed

    def test_start_after_close_raises(self, index, dataset):
        server = MicroBatchServer.for_searcher(
            ANNSearcher(index, NaiveScanner()), topk=5
        )
        server.close()

        async def try_start() -> None:
            await server.start()

        with pytest.raises(ConfigurationError, match="closed"):
            asyncio.run(try_start())


class TestEngineSpecificLifecycle:
    """Engine-only corners: writes and save on a closed engine."""

    @pytest.fixture()
    def closed_mutable_engine(self, dataset) -> Engine:
        engine = Engine.build(
            dataset.base[:2000],
            n_partitions=2,
            max_iter=2,
            coarse_max_iter=2,
            mutable=True,
        )
        engine.close()
        return engine

    def test_writes_refused_after_close(self, closed_mutable_engine, dataset):
        engine = closed_mutable_engine
        row = dataset.base[:1]
        ids = np.array([10**6], dtype=np.int64)
        with pytest.raises(ConfigurationError, match="closed"):
            engine.add(row, ids)
        with pytest.raises(ConfigurationError, match="closed"):
            engine.delete(ids)
        with pytest.raises(ConfigurationError, match="closed"):
            engine.compact()

    def test_save_refused_after_close(self, closed_mutable_engine, tmp_path):
        with pytest.raises(ConfigurationError, match="closed"):
            closed_mutable_engine.save(tmp_path / "x.idx")
