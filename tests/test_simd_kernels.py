"""Integration tests: simulated kernels compute correct results and
reproduce the paper's performance-counter relationships (Figures 3, 15).
"""

import numpy as np
import pytest

from repro import Partition, PQFastScanner
from repro.pq.adc import adc_distances
from repro.scan import NaiveScanner
from repro.simd import SCAN_KERNELS, fastscan_kernel, simulate_pq_scan


@pytest.fixture(scope="module")
def scan_setup(pq, tables, partition):
    sample = Partition(partition.codes[:1500], partition.ids[:1500],
                       partition.partition_id)
    ref = adc_distances(tables, sample.codes)
    return sample, tables, ref


@pytest.fixture(scope="module")
def baseline_runs(scan_setup):
    sample, tables, _ = scan_setup
    return {
        name: simulate_pq_scan(name, "haswell", tables, sample.codes)
        for name in SCAN_KERNELS
    }


class TestBaselineKernelCorrectness:
    @pytest.mark.parametrize("name", ["naive", "libpq", "avx", "gather"])
    def test_finds_true_minimum(self, name, scan_setup, baseline_runs):
        _, _, ref = scan_setup
        run = baseline_runs[name]
        # Kernels accumulate in float32; allow that tolerance.
        assert run.min_distance == pytest.approx(ref.min(), rel=1e-4)

    def test_scalar_kernels_find_exact_position(self, scan_setup, baseline_runs):
        _, _, ref = scan_setup
        assert baseline_runs["naive"].min_position == int(ref.argmin())
        assert baseline_runs["libpq"].min_position == int(ref.argmin())


class TestFigure3Relationships:
    """The qualitative statements of Section 3 must hold in simulation."""

    def test_naive_does_16_l1_loads_per_vector(self, baseline_runs):
        run = baseline_runs["naive"]
        assert run.counters.l1_loads / run.n_vectors == pytest.approx(16, abs=0.1)

    def test_libpq_does_9_l1_loads_per_vector(self, baseline_runs):
        run = baseline_runs["libpq"]
        assert run.counters.l1_loads / run.n_vectors == pytest.approx(9, abs=0.1)

    def test_libpq_has_more_instructions_but_not_faster(self, baseline_runs):
        """Section 3.1: libpq's instruction increase offsets its load
        decrease — it is slightly slower than naive on Haswell."""
        naive, libpq = baseline_runs["naive"], baseline_runs["libpq"]
        assert libpq.counters.instructions > naive.counters.instructions
        assert libpq.cycles_per_vector >= naive.cycles_per_vector * 0.95

    def test_gather_low_instructions_high_uops(self, baseline_runs):
        """Section 3.2: gather has a low instruction count but a high
        µop count."""
        gather = baseline_runs["gather"]
        naive = baseline_runs["naive"]
        assert gather.counters.instructions < naive.counters.instructions / 2
        assert gather.counters.uops > gather.counters.instructions * 5

    def test_gather_has_lowest_ipc(self, baseline_runs):
        ipcs = {
            name: run.counters.instructions / run.counters.cycles
            for name, run in baseline_runs.items()
        }
        assert min(ipcs, key=ipcs.get) == "gather"

    def test_gather_slower_than_naive(self, baseline_runs):
        assert (
            baseline_runs["gather"].cycles_per_vector
            > baseline_runs["naive"].cycles_per_vector
        )

    def test_memory_intensive_cycles_with_load(self, baseline_runs):
        """'The number of cycles with pending load operations is almost
        equal to the number of cycles' (Section 3.1)."""
        run = baseline_runs["naive"]
        assert run.counters.cycles_with_load >= 0.8 * run.counters.cycles


class TestFastScanKernel:
    @pytest.fixture(scope="class")
    def fast_setup(self, pq, tables, partition):
        # c=1 keeps groups ~90 vectors on this 1500-vector sample; with
        # c=2 groups of ~6 pay a full padded 16-lane block each — the
        # small-partition falloff of Section 5.6 — which drops the
        # speedup below the paper band by design.
        sample = Partition(partition.codes[:1500], partition.ids[:1500],
                           partition.partition_id)
        scanner = PQFastScanner(pq, keep=0.01, group_components=1, seed=0)
        grouped = scanner.prepare(sample)
        tables_r = scanner.assignment.remap_tables(tables)
        return sample, scanner, grouped, tables_r

    def test_topk_matches_pq_scan_exactly(self, fast_setup, tables):
        sample, scanner, grouped, tables_r = fast_setup
        ref = NaiveScanner().scan(tables, sample, topk=10)
        run = fastscan_kernel("haswell", tables_r, grouped, topk=10, keep=0.01)
        np.testing.assert_array_equal(run.topk_ids, ref.ids)
        np.testing.assert_allclose(run.topk_distances, ref.distances)

    def test_reproduces_figure15_counters(self, fast_setup, tables):
        """Figure 15's shape: fastscan needs far fewer instructions and
        L1 loads per vector than libpq (paper: 3.7 vs 34 instructions,
        1.3 vs 9 L1 loads)."""
        sample, scanner, grouped, tables_r = fast_setup
        fast = fastscan_kernel("haswell", tables_r, grouped, topk=1, keep=0.01)
        libpq = simulate_pq_scan("libpq", "haswell", tables, sample.codes)
        fast_ipv = fast.counters.instructions / fast.n_vectors
        libpq_ipv = libpq.counters.instructions / libpq.n_vectors
        assert fast_ipv < libpq_ipv / 3
        fast_l1 = fast.counters.l1_loads / fast.n_vectors
        assert fast_l1 < 4.0

    def test_speedup_in_paper_band(self, fast_setup, tables):
        """PQ Fast Scan is 4-6x faster than (libpq) PQ Scan; allow a
        wider 3-8x window for the small test partition."""
        sample, scanner, grouped, tables_r = fast_setup
        fast = fastscan_kernel("haswell", tables_r, grouped, topk=1, keep=0.01)
        libpq = simulate_pq_scan("libpq", "haswell", tables, sample.codes)
        speedup = libpq.cycles_per_vector / fast.cycles_per_vector
        assert 3.0 < speedup < 9.0

    def test_pruned_counts_match_reported(self, fast_setup, tables):
        sample, scanner, grouped, tables_r = fast_setup
        run = fastscan_kernel("haswell", tables_r, grouped, topk=1, keep=0.01)
        assert 0 < run.n_pruned <= run.n_vectors

    def test_runs_on_all_platforms(self, fast_setup):
        """pshufb exists from SSSE3 on: fastscan works on every Table 5
        platform, including pre-AVX Nehalem."""
        _, scanner, grouped, tables_r = fast_setup
        speeds = {}
        for platform in ("haswell", "ivy-bridge", "sandy-bridge", "nehalem"):
            run = fastscan_kernel(platform, tables_r, grouped, topk=1, keep=0.01)
            speeds[platform] = run.scan_speed
        assert all(s > 0 for s in speeds.values())

    def test_threshold_override_controls_pruning(self, fast_setup):
        """The calibration hook pins the int8 threshold at an extreme:
        -1 prunes every vector, 127 prunes none."""
        _, scanner, grouped, tables_r = fast_setup
        dists = adc_distances(tables_r, grouped.reconstruct_all())
        qmax = float(np.median(dists))
        tight = fastscan_kernel(
            "haswell", tables_r, grouped, qmax=qmax, threshold_override=-1
        )
        loose = fastscan_kernel(
            "haswell", tables_r, grouped, qmax=qmax, threshold_override=127
        )
        assert tight.n_pruned == tight.n_vectors
        assert loose.n_pruned == 0
        assert loose.counters.cycles > tight.counters.cycles

    def test_explicit_qmax_still_finds_minimum(self, fast_setup):
        _, scanner, grouped, tables_r = fast_setup
        dists = adc_distances(tables_r, grouped.reconstruct_all())
        run = fastscan_kernel(
            "haswell", tables_r, grouped, qmax=float(np.median(dists))
        )
        assert run.min_distance == pytest.approx(dists.min(), rel=1e-12)
        assert run.n_pruned > 0
