"""Tests for the high-level ANN search API (route + scan + merge)."""

import numpy as np
import pytest

from repro import ANNSearcher, NaiveScanner, PQFastScanner
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def searcher(index, pq):
    return ANNSearcher(index, scanner=PQFastScanner(pq, keep=0.01, seed=0))


@pytest.fixture(scope="module")
def reference(index):
    return ANNSearcher(index, scanner=NaiveScanner())


class TestANNSearcher:
    def test_single_probe_matches_partition_scan(
        self, searcher, index, dataset
    ):
        query = dataset.queries[0]
        result = searcher.search(query, topk=10, nprobe=1)
        pid = index.route(query)[0]
        tables = index.distance_tables_for(query, pid)
        direct = searcher.scanner.scan(tables, index.partitions[pid], topk=10)
        np.testing.assert_array_equal(result.ids, direct.ids)
        assert result.probed == (pid,)

    def test_fast_equals_reference_for_all_nprobe(
        self, searcher, reference, dataset, index
    ):
        for nprobe in (1, 2):
            for query in dataset.queries[:4]:
                a = searcher.search(query, topk=10, nprobe=nprobe)
                b = reference.search(query, topk=10, nprobe=nprobe)
                np.testing.assert_array_equal(a.ids, b.ids)
                np.testing.assert_allclose(a.distances, b.distances)

    def test_more_probes_never_worse(self, reference, dataset, index):
        """nprobe=all is exhaustive: distances only improve with probes."""
        query = dataset.queries[1]
        one = reference.search(query, topk=5, nprobe=1)
        both = reference.search(query, topk=5, nprobe=index.n_partitions)
        assert both.distances[0] <= one.distances[0] + 1e-12
        assert both.n_scanned >= one.n_scanned

    def test_full_probe_matches_brute_force_adc(self, reference, dataset, pq, index):
        """Probing every partition = ADC over the whole database."""
        from repro.pq.adc import adc_distances
        from repro.scan.topk import select_topk

        query = dataset.queries[2]
        got = reference.search(query, topk=10, nprobe=index.n_partitions)
        # Assemble ADC over all partitions with their per-cell tables.
        all_ids, all_d = [], []
        for pid, part in enumerate(index.partitions):
            tables = index.distance_tables_for(query, pid)
            all_ids.append(part.ids)
            all_d.append(adc_distances(tables, part.codes))
        ids, dists = select_topk(
            np.concatenate(all_d), np.concatenate(all_ids), 10
        )
        np.testing.assert_array_equal(got.ids, ids)

    def test_merged_results_sorted(self, searcher, dataset):
        result = searcher.search(dataset.queries[3], topk=20, nprobe=2)
        assert (np.diff(result.distances) >= -1e-12).all()
        assert len(result.ids) == 20

    def test_pruning_stats_aggregate(self, searcher, dataset):
        result = searcher.search(dataset.queries[0], topk=10, nprobe=2)
        assert result.n_scanned > 0
        assert 0 <= result.pruned_fraction <= 1

    def test_batch_search(self, searcher, dataset):
        results = searcher.search(dataset.queries[:3], topk=5)
        assert len(results) == 3
        for r in results:
            assert len(r.ids) == 5

    def test_rejects_bad_topk(self, searcher, dataset):
        with pytest.raises(ConfigurationError):
            searcher.search(dataset.queries[0], topk=0)


class TestExtensionPlatforms:
    def test_neon_platform_registered(self):
        from repro.simd import get_platform

        neon = get_platform("neon")
        assert neon.name == "cortex-a72"
        assert not neon.has_gather

    def test_fastscan_runs_on_neon(self, pq, tables, partition):
        from repro import Partition
        from repro.simd import fastscan_kernel

        scanner = PQFastScanner(pq, keep=0.01, group_components=1, seed=0)
        sample = Partition(partition.codes[:800], partition.ids[:800])
        grouped = scanner.prepare(sample)
        tables_r = scanner.assignment.remap_tables(tables)
        run = fastscan_kernel("neon", tables_r, grouped, topk=5, keep=0.01)
        ref = NaiveScanner().scan(tables, sample, topk=5)
        np.testing.assert_array_equal(run.topk_ids, ref.ids)


class TestReranking:
    def test_rerank_improves_rank1_recall(self, index, pq, dataset):
        from repro import exact_neighbors

        searcher = ANNSearcher(
            index,
            scanner=PQFastScanner(pq, keep=0.01, seed=0),
            vectors=dataset.base,
        )
        truth, _ = exact_neighbors(dataset.base, dataset.queries, k=1)
        plain_hits = rerank_hits = 0
        for qi, query in enumerate(dataset.queries):
            plain = searcher.search(query, topk=1, nprobe=2)
            reranked = searcher.search(query, topk=1, nprobe=2, rerank=50)
            plain_hits += int(plain.ids[0] == truth[qi, 0])
            rerank_hits += int(reranked.ids[0] == truth[qi, 0])
        assert rerank_hits >= plain_hits

    def test_rerank_distances_are_exact(self, index, pq, dataset):
        searcher = ANNSearcher(index, vectors=dataset.base)
        query = dataset.queries[0]
        result = searcher.search(query, topk=5, nprobe=1, rerank=30)
        expected = np.sum((dataset.base[result.ids] - query) ** 2, axis=1)
        np.testing.assert_allclose(result.distances, expected, rtol=1e-9)
        assert (np.diff(result.distances) >= -1e-12).all()

    def test_rerank_requires_vectors(self, index):
        searcher = ANNSearcher(index)
        with pytest.raises(ConfigurationError):
            searcher.search(np.zeros(128), topk=1, rerank=10)

    def test_rerank_shortlist_must_cover_topk(self, index, dataset):
        searcher = ANNSearcher(index, vectors=dataset.base)
        with pytest.raises(ConfigurationError):
            searcher.search(dataset.queries[0], topk=10, rerank=5)
