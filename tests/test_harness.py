"""Edge-case tests for the benchmark harness plumbing."""

import numpy as np
import pytest

from repro import NaiveScanner, PQFastScanner, QuantizationOnlyScanner
from repro.bench import HarnessContext, build_workload, run_queries, summarize
from repro.bench.harness import QueryStats


@pytest.fixture(scope="module")
def tiny_ctx(tmp_path_factory):
    cache = tmp_path_factory.mktemp("harness-cache")
    workload = build_workload(
        "sift100m", scale=5000, n_queries=6, seed=5, cache_dir=cache
    )
    return HarnessContext(workload)


class TestRunQueries:
    def test_naive_scanner_has_no_model(self, tiny_ctx):
        stats = run_queries(
            tiny_ctx, NaiveScanner(), query_indexes=[0, 1], topk=5,
        )
        for s in stats:
            assert s.modeled_time_ms is None
            assert s.pruned_fraction == 0.0
            assert s.exact_match  # vacuously: no reference configured

    def test_quantization_only_verified_against_libpq(self, tiny_ctx):
        scanner = QuantizationOnlyScanner(tiny_ctx.workload.pq, keep=0.02)
        stats = run_queries(
            tiny_ctx, scanner, query_indexes=[0], topk=5,
            verify_against=NaiveScanner(),
        )
        assert stats[0].exact_match

    def test_partition_override(self, tiny_ctx):
        scanner = PQFastScanner(
            tiny_ctx.workload.pq, keep=0.02, group_components=1, seed=0
        )
        stats = run_queries(
            tiny_ctx, scanner, query_indexes=[0, 1], topk=5,
            partition_override=0,
        )
        assert all(s.partition_id == 0 for s in stats)

    def test_cost_model_cached_per_arch(self, tiny_ctx):
        scanner = PQFastScanner(
            tiny_ctx.workload.pq, keep=0.02, group_components=1, seed=0
        )
        a = tiny_ctx.cost_model("haswell", scanner)
        b = tiny_ctx.cost_model("haswell", scanner)
        assert a is b
        c = tiny_ctx.cost_model("nehalem", scanner)
        assert c is not a
        assert c.clock_ghz != a.clock_ghz


class TestSummarize:
    def _stat(self, pruned, speed=None):
        return QueryStats(
            query_index=0, partition_id=0, partition_size=100,
            pruned_fraction=pruned, n_exact=1, n_keep=1, wall_time_s=0.1,
            modeled_time_ms=None if speed is None else 1.0,
            modeled_speed_vps=speed, exact_match=True,
        )

    def test_empty_batch(self):
        summary = summarize([])
        assert summary["n_queries"] == 0
        assert summary["all_exact"] is True

    def test_quartiles_present_with_speeds(self):
        stats = [self._stat(0.5, speed=1e9), self._stat(0.9, speed=3e9)]
        summary = summarize(stats)
        assert summary["pruned_mean"] == pytest.approx(0.7)
        assert summary["speed_q1_mvps"] <= summary["speed_median_mvps"]
        assert summary["speed_median_mvps"] <= summary["speed_q3_mvps"]

    def test_no_speed_fields_without_model(self):
        summary = summarize([self._stat(0.5)])
        assert "speed_median_mvps" not in summary


class TestWorkloadExtras:
    def test_partitions_by_size_descending(self, tiny_ctx):
        order = tiny_ctx.workload.partitions_by_size()
        sizes = tiny_ctx.workload.index.partition_sizes()
        assert list(sizes[order]) == sorted(sizes, reverse=True)

    def test_queries_for_partition_consistent(self, tiny_ctx):
        w = tiny_ctx.workload
        for pid in range(w.index.n_partitions):
            for qi in w.queries_for_partition(pid):
                assert w.query_partitions[qi] == pid

    def test_sift1b_partition_sizing(self, tmp_path):
        w = build_workload(
            "sift1b", scale=20000, n_queries=4, seed=6, cache_dir=tmp_path
        )
        # 1e9/20000 = 50K base; partition count clamps to the minimum 4.
        assert len(w.index.partition_sizes()) == 4
        assert len(w.index) == 50_000
