"""Unit tests for code memory layouts (Section 3's implementations)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.scan.layout import (
    extract_component,
    pack_codes_words,
    transpose_codes,
    unpack_codes_words,
    untranspose_codes,
)


class TestWordPacking:
    def test_roundtrip(self, rng):
        codes = rng.integers(0, 256, (50, 8)).astype(np.uint8)
        words = pack_codes_words(codes)
        np.testing.assert_array_equal(unpack_codes_words(words), codes)

    def test_component_order_matches_shifts(self, rng):
        """Component j sits at bits 8j..8j+7 — the libpq shift idiom."""
        codes = rng.integers(0, 256, (20, 8)).astype(np.uint8)
        words = pack_codes_words(codes)
        for j in range(8):
            np.testing.assert_array_equal(
                extract_component(words, j), codes[:, j]
            )

    def test_known_word(self):
        codes = np.array([[0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08]],
                         dtype=np.uint8)
        word = pack_codes_words(codes)[0]
        assert word == 0x0807060504030201

    def test_requires_eight_components(self):
        with pytest.raises(ConfigurationError):
            pack_codes_words(np.zeros((5, 4), dtype=np.uint8))

    def test_extract_component_bounds(self):
        words = np.zeros(3, dtype=np.uint64)
        with pytest.raises(ConfigurationError):
            extract_component(words, 8)


class TestTranspose:
    def test_roundtrip(self, rng):
        codes = rng.integers(0, 256, (37, 8)).astype(np.uint8)
        blocks, n = transpose_codes(codes)
        assert n == 37
        np.testing.assert_array_equal(untranspose_codes(blocks, n), codes)

    def test_block_layout_contiguity(self, rng):
        """Block b row j holds the j-th components of 8 vectors (Fig. 5)."""
        codes = rng.integers(0, 256, (16, 8)).astype(np.uint8)
        blocks, _ = transpose_codes(codes)
        assert blocks.shape == (2, 8, 8)
        np.testing.assert_array_equal(blocks[0, 3], codes[:8, 3])
        np.testing.assert_array_equal(blocks[1, 0], codes[8:, 0])

    def test_padding_repeats_last_vector(self, rng):
        codes = rng.integers(0, 256, (9, 8)).astype(np.uint8)
        blocks, n = transpose_codes(codes)
        assert blocks.shape[0] == 2
        # Padded lanes replicate the last real vector.
        np.testing.assert_array_equal(blocks[1, :, 1], codes[8])
        assert n == 9

    def test_empty_input(self):
        blocks, n = transpose_codes(np.zeros((0, 8), dtype=np.uint8))
        assert n == 0
        assert blocks.shape == (0, 8, 8)
