"""Robustness and failure-injection tests across the pipeline."""

from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro import (
    DistanceQuantizer,
    Partition,
    PQFastScanner,
    ProductQuantizer,
)
from repro.exceptions import ConfigurationError, ReproError
from repro.scan import NaiveScanner, SCANNERS


class TestAdversarialInputs:
    def test_nan_tables_rejected_by_quantizer(self):
        tables = np.full((8, 256), np.nan)
        with pytest.raises(ConfigurationError):
            DistanceQuantizer.from_tables(tables, qmax=1.0)

    def test_all_identical_codes(self, pq, tables):
        """A degenerate partition where every vector is the same code."""
        codes = np.tile(np.arange(8, dtype=np.uint8), (500, 1))
        part = Partition(codes, np.arange(500))
        ref = NaiveScanner().scan(tables, part, topk=10)
        scanner = PQFastScanner(pq, keep=0.01, group_components=2, seed=0)
        got = scanner.scan(tables, part, topk=10)
        assert got.same_neighbors(ref)
        # Ties resolved by id: the 10 smallest ids win.
        np.testing.assert_array_equal(ref.ids, np.arange(10))

    def test_zero_distance_tables(self, pq):
        """All-zero tables: every distance is 0; exactness must hold."""
        tables = np.zeros((8, 256))
        rng = np.random.default_rng(0)
        codes = rng.integers(0, 256, (300, 8)).astype(np.uint8)
        part = Partition(codes, np.arange(300))
        scanner = PQFastScanner(pq, keep=0.02, group_components=1, seed=0)
        ref = NaiveScanner().scan(tables, part, topk=7)
        assert scanner.scan(tables, part, topk=7).same_neighbors(ref)

    def test_extreme_magnitude_tables(self, pq):
        """Huge dynamic range stresses the 8-bit quantization."""
        rng = np.random.default_rng(1)
        tables = rng.uniform(0, 1, (8, 256))
        tables[0, :16] = 1e12  # one catastrophic portion
        codes = rng.integers(0, 256, (400, 8)).astype(np.uint8)
        part = Partition(codes, np.arange(400))
        scanner = PQFastScanner(pq, keep=0.02, group_components=2, seed=0)
        ref = NaiveScanner().scan(tables, part, topk=5)
        assert scanner.scan(tables, part, topk=5).same_neighbors(ref)

    def test_topk_equals_partition_size(self, tables, partition, pq):
        small = Partition(partition.codes[:50], partition.ids[:50])
        scanner = PQFastScanner(pq, keep=0.1, group_components=1, seed=0)
        ref = NaiveScanner().scan(tables, small, topk=50)
        got = scanner.scan(tables, small, topk=50)
        assert got.same_neighbors(ref)
        assert len(got.ids) == 50

    def test_topk_larger_than_partition(self, tables, partition, pq):
        small = Partition(partition.codes[:20], partition.ids[:20])
        for name, cls in SCANNERS.items():
            result = cls().scan(tables, small, topk=100)
            assert len(result.ids) == 20, name


class TestConcurrency:
    def test_concurrent_scans_are_exact(self, pq, tables, partition):
        """The scanner is shared across threads in the bandwidth
        benchmark; concurrent use must not corrupt results (the
        prepared-partition cache is the shared state)."""
        scanner = PQFastScanner(pq, keep=0.01, seed=0)
        expected = scanner.scan(tables, partition, topk=20)

        def run(_):
            return scanner.scan(tables, partition, topk=20)

        with ThreadPoolExecutor(max_workers=4) as pool:
            results = list(pool.map(run, range(8)))
        for result in results:
            assert result.same_neighbors(expected)


class TestErrorHierarchy:
    def test_every_raise_is_reproerror(self, pq):
        """Library call sites raise subclasses of ReproError so callers
        can catch one type."""
        failures = [
            lambda: PQFastScanner(ProductQuantizer()),
            lambda: DistanceQuantizer(qmin=2.0, qmax=1.0),
            lambda: Partition(np.zeros((2, 8), dtype=np.uint8), np.zeros(3)),
            lambda: PQFastScanner(pq, keep=7.0),
        ]
        for fail in failures:
            with pytest.raises(ReproError):
                fail()
