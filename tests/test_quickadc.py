"""Tests for the Quick ADC 4-bit scanner family.

Covers the nibble-packed layout, the numpy scanner (sample phase,
candidate selection, exact rerank, prepared cache), byte-identity
between the scanner and the simulated kernel, the engine/spec wiring
and the executor equivalence grid — the same byte-identity contract the
other scanners are held to, against quickadc's own sequential baseline.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import ANNSearcher, IVFADCIndex, NaiveScanner, ProductQuantizer
from repro.core.quantization import DistanceQuantizer
from repro.engine import Engine, EngineConfig
from repro.exceptions import (
    ConfigurationError,
    DimensionMismatchError,
    InvariantViolation,
    NotFittedError,
)
from repro.ivf.partition import Partition
from repro.parallel import ScannerSpec
from repro.pq.adc import adc_distances
from repro.scan import (
    QuickADCResult,
    QuickADCScanner,
    nibble_block_layout,
    nibble_lower_bounds,
    pack_nibbles,
    unpack_nibbles,
)
from repro.shard import ScatterGatherExecutor, ShardedIndex
from repro.simd import quickadc_kernel


@pytest.fixture(scope="module")
def pq4(dataset):
    """A fitted PQ 16x4 quantizer — the 64-bit nibble-code budget."""
    return ProductQuantizer(m=16, bits=4, max_iter=4, seed=5).fit(dataset.learn)


@pytest.fixture(scope="module")
def index4bit(dataset, pq4):
    return IVFADCIndex(pq4, n_partitions=4, seed=3).add(dataset.base)


@pytest.fixture(scope="module")
def scanner4(pq4):
    return QuickADCScanner(pq4, keep=0.01)


@pytest.fixture(scope="module")
def routed4(index4bit, dataset):
    query = dataset.queries[0]
    pid = index4bit.route(query)[0]
    return index4bit.partitions[pid], index4bit.distance_tables_for(query, pid)


@pytest.fixture(scope="module")
def batch_queries4(dataset):
    base = np.tile(dataset.queries, (3, 1))
    jitter = np.random.default_rng(99).normal(scale=2.0, size=base.shape)
    return np.vstack([dataset.queries, base + jitter])


class TestNibbleLayout:
    def test_pack_unpack_roundtrip(self, rng):
        codes = rng.integers(0, 16, size=(37, 16), dtype=np.uint8)
        packed = pack_nibbles(codes)
        assert packed.shape == (37, 8)
        np.testing.assert_array_equal(unpack_nibbles(packed, 16), codes)

    def test_roundtrip_odd_m(self, rng):
        codes = rng.integers(0, 16, size=(10, 5), dtype=np.uint8)
        packed = pack_nibbles(codes)
        assert packed.shape == (10, 3)
        # The padding high nibble of the last byte is zero.
        assert int((packed[:, -1] >> 4).max()) == 0
        np.testing.assert_array_equal(unpack_nibbles(packed, 5), codes)

    def test_nibble_order_matches_kernel_extraction(self):
        codes = np.array([[0x3, 0xA]], dtype=np.uint8)
        packed = pack_nibbles(codes)
        # Even component in the low nibble, odd in the high nibble.
        assert packed[0, 0] == 0x3 | (0xA << 4)

    def test_rejects_out_of_range_values(self):
        with pytest.raises(ConfigurationError):
            pack_nibbles(np.full((4, 8), 16, dtype=np.uint8))

    def test_rejects_wrong_dtype(self):
        with pytest.raises(ConfigurationError):
            pack_nibbles(np.zeros((4, 8), dtype=np.int64))

    def test_block_layout_pads_tail(self, rng):
        codes = rng.integers(0, 16, size=(21, 8), dtype=np.uint8)
        blocks, n = nibble_block_layout(codes)
        assert n == 21
        assert blocks.shape == (2, 4, 16)
        packed = pack_nibbles(codes)
        # Slice s, lane l of block b is packed byte s of vector b*16+l;
        # padding lanes repeat the last vector.
        assert blocks[1, 0, 4] == packed[20, 0]
        assert blocks[1, 2, 15] == packed[20, 2]
        assert blocks[0, 3, 7] == packed[7, 3]

    def test_lower_bounds_match_scalar_reference(self, rng):
        m = 16
        codes = rng.integers(0, 16, size=(120, m), dtype=np.uint8)
        tables = rng.uniform(0.1, 8.0, size=(m, 16))
        quantizer = DistanceQuantizer.from_tables(tables, float(np.median(
            adc_distances(tables, codes)
        )))
        q_tables = quantizer.quantize_table(tables)
        bounds = nibble_lower_bounds(pack_nibbles(codes), q_tables)
        reference = np.minimum(
            sum(
                q_tables[j].astype(np.int64)[codes[:, j]] for j in range(m)
            ),
            127,
        )
        np.testing.assert_array_equal(bounds, reference)

    def test_lower_bounds_rejects_mismatched_m(self, rng):
        packed = pack_nibbles(rng.integers(0, 16, size=(8, 16), dtype=np.uint8))
        with pytest.raises(ConfigurationError):
            nibble_lower_bounds(packed, np.zeros((6, 16), dtype=np.int8))


class TestQuickADCScanner:
    def test_rejects_8bit_quantizer(self, pq):
        with pytest.raises(ConfigurationError):
            QuickADCScanner(pq)

    def test_rejects_unfitted_quantizer(self):
        with pytest.raises(NotFittedError):
            QuickADCScanner(ProductQuantizer(m=16, bits=4))

    def test_rejects_bad_keep(self, pq4):
        with pytest.raises(ConfigurationError):
            QuickADCScanner(pq4, keep=1.5)

    def test_reported_distances_are_exact(self, scanner4, routed4):
        """Whatever rows Quick ADC selects, their distances are exact ADC."""
        partition, tables = routed4
        result = scanner4.scan(tables, partition, topk=10)
        assert isinstance(result, QuickADCResult)
        by_id = {int(i): d for i, d in zip(partition.ids, adc_distances(
            tables, partition.codes
        ))}
        for i, d in zip(result.ids, result.distances):
            assert d == by_id[int(i)]

    def test_recall_against_exhaustive_scan(self, scanner4, routed4):
        """Approximate at the margin, but not by much on a real workload."""
        partition, tables = routed4
        result = scanner4.scan(tables, partition, topk=20)
        exact = NaiveScanner().scan(tables, partition, topk=20)
        overlap = len(np.intersect1d(result.ids, exact.ids))
        assert overlap >= 15
        # The single nearest neighbor always survives selection: its
        # bound cannot exceed any cutoff that keeps topk candidates.
        assert result.ids[0] == exact.ids[0]
        assert result.distances[0] == exact.distances[0]

    def test_accounting_adds_up(self, scanner4, routed4):
        partition, tables = routed4
        result = scanner4.scan(tables, partition, topk=10)
        n = len(partition)
        assert result.n_scanned == n
        assert result.n_sample >= 10
        assert result.n_candidates >= 0
        assert result.n_sample + result.n_candidates + result.n_pruned == n
        assert result.n_pruned > 0  # real pruning on the test workload
        assert result.qmax > result.qmin

    def test_sample_shortcut_is_exact(self, pq4, routed4):
        """topk >= partition size: the sample covers everything."""
        partition, tables = routed4
        small = Partition(partition.codes[:8], partition.ids[:8], 0)
        result = QuickADCScanner(pq4).scan(tables, small, topk=8)
        exact = NaiveScanner().scan(tables, small, topk=8)
        np.testing.assert_array_equal(result.ids, exact.ids)
        assert result.distances.tobytes() == exact.distances.tobytes()
        assert result.n_pruned == 0 and result.n_sample == 8

    def test_scan_batch_matches_scan(self, scanner4, index4bit, dataset):
        pid = 1
        partition = index4bit.partitions[pid]
        tables = index4bit.distance_tables_for_batch(dataset.queries, pid)
        batch = scanner4.scan_batch(tables, partition, topk=10)
        for row, result in zip(tables, batch):
            single = scanner4.scan(row, partition, topk=10)
            np.testing.assert_array_equal(result.ids, single.ids)
            assert result.distances.tobytes() == single.distances.tobytes()
            assert result.n_pruned == single.n_pruned

    def test_scan_batch_rejects_2d_tables(self, scanner4, routed4):
        partition, tables = routed4
        with pytest.raises(DimensionMismatchError):
            scanner4.scan_batch(tables, partition, topk=5)

    def test_empty_partition(self, pq4, routed4):
        _, tables = routed4
        empty = Partition(
            np.empty((0, 16), dtype=np.uint8), np.empty(0, dtype=np.int64), 0
        )
        result = QuickADCScanner(pq4).scan(tables, empty, topk=3)
        assert len(result.ids) == 0 and result.n_scanned == 0

    def test_prepared_cache_hits_and_warm(self, pq4, routed4):
        partition, _ = routed4
        scanner = QuickADCScanner(pq4)
        assert scanner.warm([partition]) == 1
        assert scanner.prepared_misses == 1
        scanner.prepared(partition)
        assert scanner.prepared_hits == 1
        assert scanner.warm([partition]) == 0  # already cached

    def test_prepared_cache_evicts_lru(self, pq4, rng):
        scanner = QuickADCScanner(pq4, prepared_cache_size=2)
        parts = [
            Partition(
                rng.integers(0, 16, size=(20, 16), dtype=np.uint8),
                np.arange(20, dtype=np.int64),
                i,
            )
            for i in range(3)
        ]
        for part in parts:
            scanner.prepared(part)
        assert scanner.prepared_evictions == 1
        # The evicted layout (LRU = parts[0]) is rebuilt on demand.
        scanner.prepared(parts[0])
        assert scanner.prepared_misses == 4

    def test_prepare_packs_nibbles(self, scanner4, routed4):
        partition, _ = routed4
        packed = scanner4.prepare(partition)
        np.testing.assert_array_equal(
            unpack_nibbles(packed, 16), partition.codes
        )


class TestKernelScannerIdentity:
    @pytest.fixture(scope="class")
    def workload(self, pq4, rng):
        codes = rng.integers(0, 16, size=(210, 16), dtype=np.uint8)
        ids = np.arange(210, dtype=np.int64)
        tables = rng.uniform(0.1, 9.0, size=(16, 16))
        return tables, Partition(codes, ids, 0)

    def test_kernel_byte_identical_to_scanner(self, pq4, workload):
        tables, partition = workload
        scanner = QuickADCScanner(pq4, keep=0.05)
        result = scanner.scan(tables, partition, topk=10)
        run = quickadc_kernel(
            "haswell", tables, partition.codes, partition.ids,
            topk=10, keep=0.05,
        )
        np.testing.assert_array_equal(run.topk_ids, result.ids)
        assert run.topk_distances.tobytes() == result.distances.tobytes()
        assert run.n_pruned == result.n_pruned

    def test_kernel_results_platform_independent(self, workload):
        tables, partition = workload
        reference = quickadc_kernel(
            "haswell", tables, partition.codes, partition.ids, topk=5, keep=0.05
        )
        for platform in ("avx512", "graviton2", "neon", "nehalem"):
            run = quickadc_kernel(
                platform, tables, partition.codes, partition.ids,
                topk=5, keep=0.05,
            )
            np.testing.assert_array_equal(run.topk_ids, reference.topk_ids)
            assert (
                run.topk_distances.tobytes()
                == reference.topk_distances.tobytes()
            )

    def test_avx512_amortizes_byte_ops(self, workload):
        """The 512-bit cost model runs the same stream in fewer cycles."""
        tables, partition = workload
        haswell = quickadc_kernel(
            "haswell", tables, partition.codes, partition.ids, topk=5, keep=0.05
        )
        avx512 = quickadc_kernel(
            "avx512", tables, partition.codes, partition.ids, topk=5, keep=0.05
        )
        assert avx512.counters.instructions == haswell.counters.instructions
        assert avx512.counters.cycles < haswell.counters.cycles

    def test_threshold_override_bounds_pruning(self, workload):
        tables, partition = workload
        tight = quickadc_kernel(
            "haswell", tables, partition.codes, partition.ids,
            keep=0.05, threshold_override=-1,
        )
        loose = quickadc_kernel(
            "haswell", tables, partition.codes, partition.ids,
            keep=0.05, threshold_override=127,
        )
        assert tight.n_pruned == tight.n_vectors
        assert loose.n_pruned == 0
        assert loose.counters.cycles > tight.counters.cycles

    def test_kernel_rejects_bad_shapes(self, workload):
        from repro.exceptions import SimulationError

        tables, partition = workload
        with pytest.raises(SimulationError):
            quickadc_kernel("haswell", tables[:, :8], partition.codes)
        with pytest.raises(SimulationError):
            quickadc_kernel("haswell", tables, partition.codes[:, :8])


class TestEngineAndSpecWiring:
    def test_config_rejects_quickadc_with_8bit_codes(self):
        with pytest.raises(ConfigurationError):
            EngineConfig(scanner="quickadc", bits=8)

    def test_engine_builds_and_searches(self, dataset):
        config = EngineConfig(
            m=16, bits=4, scanner="quickadc", n_partitions=4,
            max_iter=4, coarse_max_iter=4, nprobe=2, seed=0,
        )
        with Engine.build(dataset.base[:4000], config) as engine:
            results = engine.search(dataset.queries, k=10)
            assert len(results) == len(dataset.queries)
            assert all(len(r.ids) == 10 for r in results)

    def test_scanner_spec_roundtrip(self, pq4):
        scanner = QuickADCScanner(pq4, keep=0.02, prepared_cache_size=7)
        spec = ScannerSpec.for_scanner(scanner)
        assert spec.kind == "quickadc"
        rebuilt = spec.build(pq4)
        assert isinstance(rebuilt, QuickADCScanner)
        assert rebuilt.keep == 0.02
        assert rebuilt.prepared_cache_size == 7


class TestExecutorEquivalence:
    """quickadc through every execution layer, byte-identical to its
    own sequential baseline (the contract the other scanners obey)."""

    def _assert_identical(self, a, b):
        assert len(a) == len(b)
        for ra, rb in zip(a, b):
            np.testing.assert_array_equal(ra.ids, rb.ids)
            assert ra.distances.tobytes() == rb.distances.tobytes()
            assert ra.n_scanned == rb.n_scanned
            assert ra.n_pruned == rb.n_pruned
            assert ra.probed == rb.probed

    @pytest.mark.parametrize("nprobe", [1, 2])
    @pytest.mark.parametrize("n_workers", [1, 2, 4])
    def test_batch_identical_to_sequential(
        self, index4bit, pq4, batch_queries4, nprobe, n_workers
    ):
        searcher = ANNSearcher(index4bit, scanner=QuickADCScanner(pq4))
        seq = searcher.search(
            batch_queries4, topk=10, nprobe=nprobe, executor="sequential"
        )
        bat = searcher.search(
            batch_queries4, topk=10, nprobe=nprobe, n_workers=n_workers
        )
        self._assert_identical(seq, bat)

    @pytest.mark.parametrize("nprobe", [1, 2])
    def test_process_identical_to_sequential(
        self, index4bit, pq4, batch_queries4, nprobe
    ):
        with ANNSearcher(index4bit, scanner=QuickADCScanner(pq4)) as searcher:
            seq = searcher.search(
                batch_queries4, topk=10, nprobe=nprobe, executor="sequential"
            )
            proc = searcher.search(
                batch_queries4, topk=10, nprobe=nprobe,
                executor="process", n_workers=2,
            )
            self._assert_identical(seq, proc)

    def test_sharded_identical_to_sequential(
        self, index4bit, pq4, batch_queries4
    ):
        searcher = ANNSearcher(index4bit, scanner=QuickADCScanner(pq4))
        seq = searcher.search(
            batch_queries4, topk=10, nprobe=2, executor="sequential"
        )
        sharded = ShardedIndex.from_index(index4bit, n_shards=2)
        executor = ScatterGatherExecutor(
            sharded,
            lambda: QuickADCScanner(pq4),
            n_workers=2,
            backend="thread",
        )
        try:
            response = executor.run(batch_queries4, topk=10, nprobe=2)
            assert not response.partial
            self._assert_identical(seq, response.results)
        finally:
            executor.close()


class TestSanitizer:
    def test_corrupt_codes_rejected_at_packing(self, pq4, routed4):
        """Fresh corruption is caught by the layout's own validation."""
        partition, tables = routed4
        corrupt_codes = partition.codes.copy()
        corrupt_codes[3, 2] = 99  # not a nibble
        corrupt = Partition(corrupt_codes, partition.ids.copy(), 0)
        with pytest.raises(ConfigurationError, match="sub-indexes"):
            QuickADCScanner(pq4, keep=0.01).scan(tables, corrupt, topk=5)

    def test_nibble_invariant_catches_corruption_after_packing(
        self, pq4, routed4, monkeypatch
    ):
        """Codes corrupted *after* the layout was prepared and cached —
        the scenario only the runtime sanitizer can see."""
        partition, tables = routed4
        codes = partition.codes.copy()
        mutable = Partition(codes, partition.ids.copy(), 0)
        scanner = QuickADCScanner(pq4, keep=0.01)
        assert scanner.warm([mutable]) == 1  # packs the still-valid codes
        codes[3, 2] = 99  # not a nibble
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        with pytest.raises(InvariantViolation, match="nibble range"):
            scanner.scan(tables, mutable, topk=5)

    def test_clean_scan_passes_under_sanitizer(
        self, pq4, routed4, monkeypatch
    ):
        partition, tables = routed4
        monkeypatch.setenv("REPRO_SANITIZE", "1")
        scanner = QuickADCScanner(pq4, keep=0.01)
        result = scanner.scan(tables, partition, topk=5)
        monkeypatch.delenv("REPRO_SANITIZE")
        unsanitized = scanner.scan(tables, partition, topk=5)
        np.testing.assert_array_equal(result.ids, unsanitized.ids)
        assert result.distances.tobytes() == unsanitized.distances.tobytes()
