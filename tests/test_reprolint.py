"""Tests for the reprolint AST invariant checker (tools/reprolint)."""

from __future__ import annotations

import ast
import json
import subprocess
import sys
from pathlib import Path

import pytest

REPO = Path(__file__).resolve().parents[1]
if str(REPO) not in sys.path:
    sys.path.insert(0, str(REPO))

from tools.reprolint.engine import Pragmas, check_file, run as run_lint
from tools.reprolint.inference import ModuleInference, is_8bit, is_wide
from tools.reprolint.rules import default_rules

FIXTURES = REPO / "tests" / "reprolint_fixtures"

BAD_FIXTURES = {
    "r1_bad_wrapping_add.py": "R1",
    "r2_bad_unjustified_cast.py": "R2",
    "r2_bad_invalid_justification.py": "R2",
    "r3_bad_assert.py": "R3",
    "r4_bad_vector_loop.py": "R4",
    "r5_bad_bare_ndarray.py": "R5",
    "r5_bad_alias_conflict.py": "R5",
    "r6_bad_unlocked_state.py": "R6",
    "r7_bad_blocking_under_lock.py": "R7",
    "r7_bad_lock_order_cycle.py": "R7",
    "r8_bad_unpicklable_submit.py": "R8",
    "r9_bad_result_no_timeout.py": "R9",
}

OK_FIXTURES = [
    "r1_ok_saturating.py",
    "r2_ok_sanctioned.py",
    "r3_ok_exceptions.py",
    "r4_ok_justified.py",
    "r5_ok_aliases.py",
    "r6_ok_locked_state.py",
    "r7_ok_lock_discipline.py",
    "r8_ok_sanctioned_submit.py",
    "r9_ok_result_timeout.py",
]


def lint_fixture(name: str):
    return check_file(FIXTURES / name, default_rules(), force_all=True)


class TestFixtures:
    @pytest.mark.parametrize("name,rule", sorted(BAD_FIXTURES.items()))
    def test_bad_fixture_is_flagged(self, name, rule):
        violations = lint_fixture(name)
        assert violations, f"{name} produced no violations"
        assert {v.rule for v in violations} == {rule}

    @pytest.mark.parametrize("name", OK_FIXTURES)
    def test_ok_fixture_is_clean(self, name):
        assert lint_fixture(name) == []

    def test_every_rule_has_both_fixture_kinds(self):
        rules = {rule.id for rule in default_rules()}
        assert set(BAD_FIXTURES.values()) == rules
        assert {name[:2].upper() for name in OK_FIXTURES} == rules


class TestShippedTree:
    def test_src_is_clean(self):
        violations = run_lint([REPO / "src"], base=REPO)
        assert violations == [], "\n".join(v.format() for v in violations)

    def test_rules_cover_expected_ids(self):
        assert [rule.id for rule in default_rules()] == [
            "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9",
        ]


class TestCLI:
    def run_cli(self, *args: str) -> subprocess.CompletedProcess:
        return subprocess.run(
            [sys.executable, "-m", "tools.reprolint", *args],
            cwd=REPO,
            capture_output=True,
            text=True,
        )

    def test_clean_tree_exits_zero(self):
        proc = self.run_cli("src")
        assert proc.returncode == 0, proc.stdout + proc.stderr

    def test_bad_fixture_exits_one(self):
        proc = self.run_cli(
            "--all-rules", str(FIXTURES / "r1_bad_wrapping_add.py")
        )
        assert proc.returncode == 1
        assert "R1" in proc.stdout

    def test_unknown_rule_exits_two(self):
        proc = self.run_cli("--rules", "R99", "src")
        assert proc.returncode == 2

    def test_missing_path_exits_two(self):
        proc = self.run_cli("no/such/dir")
        assert proc.returncode == 2

    def test_list_rules(self):
        proc = self.run_cli("--list-rules")
        assert proc.returncode == 0
        for rule_id in (
            "R1", "R2", "R3", "R4", "R5", "R6", "R7", "R8", "R9",
        ):
            assert rule_id in proc.stdout

    def test_summary_counts_files(self):
        proc = self.run_cli("src")
        assert proc.returncode == 0
        assert "file(s) checked" in proc.stderr

    def test_empty_path_reports_zero_files(self, tmp_path):
        proc = self.run_cli(str(tmp_path))
        assert proc.returncode == 0
        assert "0 file(s) checked" in proc.stderr

    def test_strict_empty_exits_two(self, tmp_path):
        proc = self.run_cli("--strict-empty", str(tmp_path))
        assert proc.returncode == 2
        assert "no Python files" in proc.stderr

    def test_strict_empty_passes_with_files(self):
        proc = self.run_cli("--strict-empty", "src")
        assert proc.returncode == 0

    def test_json_format(self):
        proc = self.run_cli(
            "--all-rules", "--format", "json",
            str(FIXTURES / "r3_bad_assert.py"),
        )
        assert proc.returncode == 1
        payload = json.loads(proc.stdout)
        assert {item["rule"] for item in payload} == {"R3"}
        assert all("line" in item and "message" in item for item in payload)

    def test_rule_selection_filters(self):
        # The R3 fixture is clean under every other rule.
        proc = self.run_cli(
            "--all-rules", "--rules", "R1,R2,R4,R5",
            str(FIXTURES / "r3_bad_assert.py"),
        )
        assert proc.returncode == 0


class TestPragmas:
    def test_key_value_parsing(self):
        pragmas = Pragmas("x = 1  # reprolint: narrowing=exact, disable=R1\n")
        node = ast.parse("x = 1").body[0]
        assert pragmas.get(node, "narrowing") == "exact"
        assert pragmas.disabled(node, "R1")
        assert not pragmas.disabled(node, "R2")

    def test_multiline_statement_span(self):
        source = "y = (\n    a +\n    b  # reprolint: disable=R1\n)\n"
        pragmas = Pragmas(source)
        stmt = ast.parse(source).body[0]
        assert pragmas.disabled(stmt, "R1")

    def test_absent_pragma(self):
        pragmas = Pragmas("x = 1\n")
        node = ast.parse("x = 1").body[0]
        assert pragmas.get(node, "narrowing") is None


class TestInference:
    def infer_last(self, source: str):
        tree = ast.parse(source)
        inference = ModuleInference(tree)
        last = tree.body[-1]
        assert isinstance(last, ast.Assign)
        return inference.dtype_of(last.value)

    def test_constructor_dtype(self):
        assert (
            self.infer_last("import numpy as np\nx = np.zeros(4, dtype=np.int8)")
            == "int8"
        )

    def test_astype_tracks_target(self):
        source = (
            "import numpy as np\n"
            "a = np.zeros(4, dtype=np.float64)\n"
            "b = a.astype(np.int16)\n"
            "c = b + b\n"
        )
        assert self.infer_last(source) == "int16"

    def test_python_int_does_not_rescue_int8(self):
        # NumPy weak promotion: int8 + python int stays int8.
        source = (
            "import numpy as np\n"
            "a = np.zeros(4, dtype=np.int8)\n"
            "b = a + 1\n"
        )
        assert self.infer_last(source) == "int8"

    def test_unknown_is_none(self):
        assert self.infer_last("x = mystery()") is None

    def test_width_predicates(self):
        assert is_8bit("int8") and is_8bit("uint8")
        assert not is_8bit("int16") and not is_8bit(None)
        assert is_wide("int16") and is_wide("float64")
        assert not is_wide("uint8") and not is_wide(None)
