"""Tests for the observability subsystem (repro.obs)."""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import ANNSearcher, NaiveScanner, PQFastScanner, QuantizationOnlyScanner
from repro.exceptions import ConfigurationError, DatasetError
from repro.obs import (
    Observability,
    MetricsRegistry,
    NULL_SPAN,
    STAGE_LATENCY_METRIC,
    Tracer,
    get_observability,
    observability_session,
    parse_prometheus,
    set_observability,
    to_json,
    to_prometheus,
    write_snapshots,
)
from repro.obs.snapshot import check_snapshot
from repro.simd.counters import WorkerStats


class TestMetricsPrimitives:
    def test_counter_accumulates_per_label(self):
        reg = MetricsRegistry()
        c = reg.counter("repro_test_total", labelnames=("scanner",))
        c.inc(3, scanner="naive")
        c.inc(2, scanner="naive")
        c.inc(1, scanner="fastpq")
        assert c.value(scanner="naive") == 5
        assert c.value(scanner="fastpq") == 1
        assert c.value(scanner="never") == 0

    def test_counter_rejects_decrease(self):
        c = MetricsRegistry().counter("repro_test_total")
        with pytest.raises(ConfigurationError):
            c.inc(-1)

    def test_label_mismatch_rejected(self):
        c = MetricsRegistry().counter("repro_test_total", labelnames=("a",))
        with pytest.raises(ConfigurationError):
            c.inc(1, b="x")
        with pytest.raises(ConfigurationError):
            c.inc(1)

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("bad name")
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("ok_name", labelnames=("bad-label",))

    def test_gauge_last_value_wins(self):
        g = MetricsRegistry().gauge("repro_test_gauge")
        g.set(1.5)
        g.set(0.25)
        assert g.value() == 0.25

    def test_histogram_cumulative_buckets(self):
        h = MetricsRegistry().histogram(
            "repro_test_seconds", buckets=(0.01, 0.1, 1.0)
        )
        for value in (0.005, 0.05, 0.5, 5.0):
            h.observe(value)
        counts, total, count = h.snapshot_child()
        assert counts == [1, 2, 3, 4]  # cumulative, +Inf last
        assert count == 4
        assert total == pytest.approx(5.555)

    def test_histogram_bucket_validation(self):
        reg = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            reg.histogram("repro_h1_seconds", buckets=())
        with pytest.raises(ConfigurationError):
            reg.histogram("repro_h2_seconds", buckets=(1.0, 0.5))
        with pytest.raises(ConfigurationError):
            reg.histogram("repro_h3_seconds", buckets=(1.0, float("inf")))

    def test_registry_get_or_create_and_kind_conflicts(self):
        reg = MetricsRegistry()
        c1 = reg.counter("repro_x_total", labelnames=("a",))
        assert reg.counter("repro_x_total", labelnames=("a",)) is c1
        with pytest.raises(ConfigurationError):
            reg.gauge("repro_x_total")
        with pytest.raises(ConfigurationError):
            reg.counter("repro_x_total", labelnames=("b",))

    def test_counters_are_thread_safe(self):
        c = MetricsRegistry().counter("repro_thread_total")

        def bump():
            for _ in range(1000):
                c.inc(1)

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value() == 8000


class TestTracer:
    def test_spans_recorded_with_stage_and_duration(self):
        tracer = Tracer()
        with tracer.span("scan"):
            pass
        with tracer.span("merge"):
            pass
        records = tracer.spans()
        assert [r.stage for r in records] == ["scan", "merge"]
        assert all(r.duration_s >= 0 for r in records)

    def test_ring_is_bounded(self):
        tracer = Tracer(max_spans=4)
        for i in range(10):
            with tracer.span(f"s{i}"):
                pass
        assert len(tracer.spans()) == 4
        assert tracer.spans()[0].stage == "s6"

    def test_stage_summary_aggregates(self):
        tracer = Tracer()
        for _ in range(3):
            with tracer.span("scan"):
                pass
        summary = tracer.stage_summary()
        assert summary["scan"]["count"] == 3
        assert summary["scan"]["total_s"] >= summary["scan"]["max_s"]

    def test_tracer_feeds_latency_histogram(self):
        reg = MetricsRegistry()
        tracer = Tracer(registry=reg)
        with tracer.span("route"):
            pass
        hist = reg.get(STAGE_LATENCY_METRIC)
        _, _, count = hist.snapshot_child(stage="route")
        assert count == 1

    def test_clear(self):
        tracer = Tracer()
        with tracer.span("scan"):
            pass
        tracer.clear()
        assert tracer.spans() == []


class TestObservabilityFacade:
    def test_disabled_is_noop(self):
        obs = Observability(enabled=False)
        assert obs.span("scan") is NULL_SPAN
        obs.record_scan("naive", 100, 0)
        obs.record_cache_access(True)
        obs.record_batch(4, 0.1, [WorkerStats(worker_id=0)])
        snapshot = obs.snapshot()
        assert snapshot["counters"]["repro_vectors_scanned_total"] == []

    def test_pruning_rate_gauge_tracks_counters(self):
        obs = Observability(enabled=True)
        obs.record_scan("fastpq", 1000, 950)
        obs.record_scan("fastpq", 1000, 970)
        gauge = obs.metrics.get("repro_pruning_rate")
        assert gauge.value(scanner="fastpq") == pytest.approx(0.96)

    def test_cache_ratio_gauge(self):
        obs = Observability(enabled=True)
        obs.record_cache_access(False)
        obs.record_cache_access(True)
        obs.record_cache_access(True)
        ratio = obs.metrics.get("repro_prepared_cache_hit_ratio")
        assert ratio.value() == pytest.approx(2 / 3)

    def test_record_batch_worker_gauges(self):
        obs = Observability(enabled=True)
        stats = WorkerStats(worker_id=1)
        stats.record_job(
            n_scans=2, n_vectors_scanned=500, n_vectors_pruned=100,
            busy_time_s=0.25,
        )
        obs.record_batch(8, 0.5, [stats])
        speed = obs.metrics.get("repro_worker_scan_speed_vps")
        assert speed.value(worker="1") == pytest.approx(2000.0)
        assert obs.metrics.get("repro_queries_total").value() == 8

    def test_session_installs_and_restores_default(self):
        before = get_observability()
        with observability_session() as obs:
            assert get_observability() is obs
            assert obs.enabled
        assert get_observability() is before

    def test_set_observability_returns_previous(self):
        fresh = Observability(enabled=False)
        previous = set_observability(fresh)
        try:
            assert get_observability() is fresh
        finally:
            set_observability(previous)


class TestExporters:
    def _populated(self) -> Observability:
        obs = Observability(enabled=True)
        obs.record_scan("fastpq", 1000, 970)
        obs.record_cache_access(False)
        obs.record_cache_access(True)
        with obs.span("scan"):
            pass
        obs.record_batch(4, 0.01, [WorkerStats(worker_id=0)])
        return obs

    def test_prometheus_roundtrip(self):
        obs = self._populated()
        samples = parse_prometheus(to_prometheus(obs.metrics))
        assert samples['repro_pruning_rate{scanner="fastpq"}'] == pytest.approx(
            0.97
        )
        assert samples["repro_prepared_cache_hits_total"] == 1
        assert samples['repro_stage_latency_seconds_count{stage="scan"}'] == 1
        assert samples["repro_queries_total"] == 4

    def test_prometheus_has_help_and_type_headers(self):
        text = to_prometheus(self._populated().metrics)
        assert "# TYPE repro_pruning_rate gauge" in text
        assert "# TYPE repro_vectors_scanned_total counter" in text
        assert "# TYPE repro_stage_latency_seconds histogram" in text

    def test_json_snapshot_structure(self):
        import json

        data = json.loads(to_json(self._populated().metrics))
        assert set(data) == {"counters", "gauges", "histograms"}
        scanned = data["counters"]["repro_vectors_scanned_total"]
        assert scanned == [{"labels": {"scanner": "fastpq"}, "value": 1000.0}]
        hist = data["histograms"]["repro_stage_latency_seconds"][0]
        assert hist["buckets"]["+Inf"] == hist["count"] == 1

    def test_parse_rejects_malformed_lines(self):
        with pytest.raises(DatasetError):
            parse_prometheus("repro_x{unterminated 1")
        with pytest.raises(DatasetError):
            parse_prometheus("repro_x not-a-number")

    def test_write_snapshots_and_check(self, tmp_path):
        obs = self._populated()
        json_path = tmp_path / "obs.json"
        prom_path = tmp_path / "obs.prom"
        write_snapshots(obs.metrics, json_path=json_path, prom_path=prom_path)
        assert json_path.exists() and prom_path.exists()
        assert check_snapshot(prom_path, ["repro_pruning_rate"]) == []
        missing = check_snapshot(prom_path, ["repro_nonexistent_metric"])
        assert missing == ["repro_nonexistent_metric"]


class TestPipelineIntegration:
    """Observability threaded through the real batch engine."""

    def _searcher(self, index, pq, scanner_cls):
        if scanner_cls is NaiveScanner:
            return ANNSearcher(index, NaiveScanner())
        if scanner_cls is PQFastScanner:
            return ANNSearcher(index, PQFastScanner(pq, keep=0.01, seed=0))
        return ANNSearcher(index, QuantizationOnlyScanner(pq, keep=0.01))

    def test_batch_stages_all_traced(self, index, pq, dataset):
        searcher = self._searcher(index, pq, PQFastScanner)
        with observability_session() as obs:
            searcher.search(
                dataset.queries, topk=10, nprobe=2, n_workers=2
            )
        stages = set(obs.tracer.stage_summary())
        assert {"route", "warm", "tables", "scan", "merge"} <= stages

    def test_single_query_path_traced(self, index, pq, dataset):
        searcher = self._searcher(index, pq, NaiveScanner)
        with observability_session() as obs:
            searcher.search(dataset.queries[0], topk=10, nprobe=2)
        stages = set(obs.tracer.stage_summary())
        assert {"route", "tables", "scan", "merge"} <= stages

    @pytest.mark.parametrize(
        "scanner_cls", [NaiveScanner, PQFastScanner, QuantizationOnlyScanner]
    )
    def test_scan_counters_recorded_per_scanner(
        self, index, pq, dataset, scanner_cls
    ):
        searcher = self._searcher(index, pq, scanner_cls)
        with observability_session() as obs:
            results = searcher.search(
                dataset.queries, topk=10, nprobe=2, n_workers=1
            )
        name = searcher.scanner.name
        scanned = obs.metrics.get("repro_vectors_scanned_total")
        pruned = obs.metrics.get("repro_vectors_pruned_total")
        assert scanned.value(scanner=name) == sum(r.n_scanned for r in results)
        assert pruned.value(scanner=name) == sum(r.n_pruned for r in results)
        gauge = obs.metrics.get("repro_pruning_rate").value(scanner=name)
        total_scanned = sum(r.n_scanned for r in results)
        expected = sum(r.n_pruned for r in results) / total_scanned
        assert gauge == pytest.approx(expected)

    def test_prepared_cache_metrics(self, index, pq, dataset):
        scanner = PQFastScanner(pq, keep=0.01, seed=0)
        searcher = ANNSearcher(index, scanner)
        with observability_session() as obs:
            searcher.search(dataset.queries, topk=5, nprobe=2)
        hits = obs.metrics.get("repro_prepared_cache_hits_total").value()
        misses = obs.metrics.get("repro_prepared_cache_misses_total").value()
        assert misses == index.n_partitions  # one build per probed partition
        assert hits > 0
        ratio = obs.metrics.get("repro_prepared_cache_hit_ratio").value()
        assert ratio == pytest.approx(hits / (hits + misses))

    def test_results_identical_with_and_without_observability(
        self, index, pq, dataset
    ):
        searcher = self._searcher(index, pq, PQFastScanner)
        baseline = searcher.search(
            dataset.queries, topk=10, nprobe=2, n_workers=2
        )
        with observability_session():
            instrumented = searcher.search(
                dataset.queries, topk=10, nprobe=2, n_workers=2
            )
        for a, b in zip(baseline, instrumented):
            assert a.ids.tobytes() == b.ids.tobytes()
            assert a.distances.tobytes() == b.distances.tobytes()
            assert a.probed == b.probed

    def test_worker_metrics_from_batch_report(self, index, pq, dataset):
        searcher = self._searcher(index, pq, NaiveScanner)
        with observability_session() as obs:
            searcher.search(
                dataset.queries, topk=10, nprobe=2, n_workers=2
            )
        samples = obs.metrics.get("repro_worker_scan_speed_vps").samples()
        assert len(samples) == 2  # one gauge per worker slot
        assert obs.metrics.get("repro_batches_total").value() == 1
        assert obs.metrics.get("repro_queries_total").value() == len(
            dataset.queries
        )

    def test_explicit_observability_on_executor(self, index, pq, dataset):
        from repro import BatchExecutor

        default_before = get_observability().metrics.get(
            "repro_queries_total"
        ).value()
        obs = Observability(enabled=True)
        executor = BatchExecutor(
            index, NaiveScanner(), n_workers=1, observability=obs
        )
        executor.run(dataset.queries[:2], topk=5, nprobe=1)
        assert obs.metrics.get("repro_queries_total").value() == 2
        # the process default stayed untouched
        assert (
            get_observability().metrics.get("repro_queries_total").value()
            == default_before
        )

    def test_prometheus_export_of_live_run_parses(self, index, pq, dataset):
        searcher = self._searcher(index, pq, PQFastScanner)
        with observability_session() as obs:
            searcher.search(dataset.queries, topk=10, nprobe=2)
        samples = parse_prometheus(obs.export_prometheus())
        assert any(k.startswith("repro_pruning_rate{") for k in samples)
        assert any(
            k.startswith("repro_stage_latency_seconds_bucket{") for k in samples
        )


class TestBenchEmission:
    def test_throughput_payload_contains_observability(self):
        from repro.bench.throughput import run_benchmark

        data = run_benchmark(
            scale=20000, n_queries=8, topk=10, nprobe=2,
            worker_counts=(1,), repeats=1,
        )
        obs = data["observability"]
        assert "metrics" in obs and "prometheus" in obs
        assert "stage_latency" in obs and "report" in obs
        samples = parse_prometheus(obs["prometheus"])
        assert any(k.startswith("repro_pruning_rate") for k in samples)
        assert "repro_queries_total" in samples
        counters = obs["metrics"]["counters"]
        assert counters["repro_vectors_scanned_total"]
        assert obs["report"]["n_queries"] == 8
