"""Tests for the Section-5.8 memory-bandwidth concurrency model."""

import pytest

from repro.bench.bandwidth import (
    FASTSCAN_BYTES_PER_VECTOR,
    PQSCAN_BYTES_PER_VECTOR,
    analyze_concurrency,
)
from repro.simd import get_platform


class TestBandwidthAnalysis:
    def test_paper_reference_point(self):
        """Section 5.8: 1800 M vecs/s at 6 B/vector = 10.8 GB/s."""
        cpu = get_platform("C")
        analysis = analyze_concurrency("fastpq", 1800e6, cpu)
        assert analysis.single_core_bandwidth_gbs == pytest.approx(10.8)

    def test_bytes_per_vector_defaults(self):
        cpu = get_platform("A")
        fast = analyze_concurrency("fastpq", 1e9, cpu)
        scan = analyze_concurrency("libpq", 1e9, cpu)
        assert fast.bytes_per_vector == FASTSCAN_BYTES_PER_VECTOR == 6.0
        assert scan.bytes_per_vector == PQSCAN_BYTES_PER_VECTOR == 8.0

    def test_scaling_linear_until_wall(self):
        cpu = get_platform("C")  # 42.6 GB/s, 6 cores
        analysis = analyze_concurrency("fastpq", 2000e6, cpu)
        wall_vps = 42.6e9 / 6.0
        for k, agg in enumerate(analysis.scaling, start=1):
            assert agg == pytest.approx(min(k * 2000e6, wall_vps))

    def test_saturation_cores(self):
        cpu = get_platform("C")
        analysis = analyze_concurrency("fastpq", 2000e6, cpu)
        # 2000 M vecs/s * 6 B = 12 GB/s per core; 42.6 / 12 = 3.55 cores.
        assert analysis.saturation_cores == pytest.approx(3.55)
        assert analysis.bandwidth_bound  # 3.55 <= 6 cores

    def test_slow_scanner_never_bound(self):
        cpu = get_platform("C")
        analysis = analyze_concurrency("libpq", 200e6, cpu)
        assert not analysis.bandwidth_bound
        assert analysis.scaling[-1] == pytest.approx(cpu.n_cores * 200e6)

    def test_explicit_bytes_override(self):
        cpu = get_platform("A")
        analysis = analyze_concurrency("fastpq", 1e9, cpu, bytes_per_vector=7.0)
        assert analysis.bytes_per_vector == 7.0

    def test_platforms_report_bandwidth(self):
        for letter in ("A", "B", "C", "D"):
            cpu = get_platform(letter)
            # Section 5.8 cites 40-70 GB/s for servers; laptops less.
            assert 20.0 <= cpu.memory_bandwidth_gbs <= 70.0
            assert cpu.n_cores >= 4
