"""Unit tests for minimum tables and the optimized assignment (Sec. 4.3)."""

import numpy as np
import pytest

from repro.core.minimum_tables import (
    CentroidAssignment,
    minimum_table,
    minimum_tables,
    optimized_assignment,
)
from repro.exceptions import ConfigurationError
from repro.pq.adc import adc_distances


class TestMinimumTable:
    def test_per_portion_minima(self, rng):
        table = rng.uniform(0, 100, size=256)
        mins = minimum_table(table)
        assert mins.shape == (16,)
        for p in range(16):
            assert mins[p] == table[p * 16 : (p + 1) * 16].min()

    def test_lower_bound_property(self, rng):
        """Any entry's portion-minimum never exceeds the entry itself."""
        table = rng.uniform(0, 100, size=256)
        mins = minimum_table(table)
        for i in range(256):
            assert mins[i >> 4] <= table[i]

    def test_requires_256_entries(self):
        with pytest.raises(ConfigurationError):
            minimum_table(np.zeros(128))

    def test_minimum_tables_selects_components(self, rng):
        tables = rng.uniform(size=(8, 256))
        mins = minimum_tables(tables, np.array([4, 5, 6, 7]))
        assert mins.shape == (4, 16)
        np.testing.assert_allclose(mins[0], minimum_table(tables[4]))


class TestCentroidAssignment:
    def test_identity_is_noop(self, rng):
        codes = rng.integers(0, 256, (10, 8)).astype(np.uint8)
        tables = rng.uniform(size=(8, 256))
        ident = CentroidAssignment.identity(8)
        np.testing.assert_array_equal(ident.remap_codes(codes), codes)
        np.testing.assert_array_equal(ident.remap_tables(tables), tables)

    def test_remap_preserves_adc(self, rng):
        """The core invariant: remapped (codes, tables) give identical
        distances — reassignment never changes results."""
        codes = rng.integers(0, 256, (100, 8)).astype(np.uint8)
        tables = rng.uniform(size=(8, 256))
        orders = {j: rng.permutation(256) for j in range(3, 8)}
        assignment = CentroidAssignment(8, orders)
        d_before = adc_distances(tables, codes)
        d_after = adc_distances(
            assignment.remap_tables(tables), assignment.remap_codes(codes)
        )
        np.testing.assert_allclose(d_before, d_after, rtol=1e-12)

    def test_rejects_non_permutation(self):
        with pytest.raises(ConfigurationError):
            CentroidAssignment(8, {0: np.zeros(256, dtype=int)})

    def test_rejects_out_of_range_component(self, rng):
        with pytest.raises(ConfigurationError):
            CentroidAssignment(4, {7: rng.permutation(256)})


class TestOptimizedAssignment:
    def test_orders_are_permutations(self, pq):
        assignment = optimized_assignment(pq, [6, 7], seed=0)
        assert set(assignment.orders) == {6, 7}
        for order in assignment.orders.values():
            assert sorted(order.tolist()) == list(range(256))

    def test_tightens_minimum_tables(self, pq, query):
        """The whole point of the optimized assignment: per-portion
        minima get closer to the true entries (Figure 11)."""
        tables = pq.distance_tables(query)
        components = [4, 5, 6, 7]
        assignment = optimized_assignment(pq, components, seed=0)
        remapped = assignment.remap_tables(tables)

        def tightness(tbls):
            # Mean gap between an entry and its portion minimum.
            total = 0.0
            for j in components:
                mins = minimum_table(tbls[j])
                gaps = tbls[j] - np.repeat(mins, 16)
                total += gaps.mean()
            return total

        assert tightness(remapped) < tightness(tables)

    def test_apply_to_quantizer_keeps_error(self, dataset):
        from repro import ProductQuantizer

        pq2 = ProductQuantizer(m=8, bits=8, max_iter=3, seed=9).fit(dataset.learn)
        before = pq2.quantization_error(dataset.base[:200])
        assignment = optimized_assignment(pq2, [4, 5], seed=0)
        assignment.apply_to_quantizer(pq2)
        after = pq2.quantization_error(dataset.base[:200])
        assert after == pytest.approx(before, rel=1e-12)

    def test_requires_256_centroids(self, dataset):
        from repro import ProductQuantizer

        small = ProductQuantizer(m=8, bits=4, max_iter=2, seed=0).fit(dataset.learn)
        with pytest.raises(ConfigurationError):
            optimized_assignment(small, [0])
