"""R4 must pass: whitelisted setup code and justified loops."""

import numpy as np


def load_tables(tables: np.ndarray) -> list:
    rows = []
    flat = np.asarray(tables, dtype=np.float32)
    for row in flat:
        rows.append(row)
    return rows


def prepare() -> int:
    codes = np.zeros(64, dtype=np.uint8)
    total = 0
    for byte in codes:  # reprolint: loop=one-time-layout-preparation
        total = total + int(byte)
    return total
