"""R6 must flag: guarded-class attributes written without the lock."""

import threading


class BatchExecutor:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: list[int] = []
        self.completed = 0

    def record(self, job: int) -> None:
        self._jobs.append(job)
        self.completed += 1
