"""R6 must pass: shared writes happen under the lock or thread-locally."""

import threading


class BatchExecutor:
    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._jobs: list[int] = []
        self.completed = 0
        self._scratch = threading.local()

    def record(self, job: int) -> None:
        with self._lock:
            self._jobs.append(job)
            self.completed += 1

    def stash(self, value: int) -> None:
        self._scratch.value = value
