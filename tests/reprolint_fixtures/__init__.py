"""Fixture snippets for the reprolint checker tests.

Each ``rN_bad_*.py`` file must be flagged by rule RN and each
``rN_ok_*.py`` file must pass every rule; the test suite runs them with
``--all-rules`` (they live outside the scoped ``repro/`` paths). The
modules are parsed, never imported.
"""
