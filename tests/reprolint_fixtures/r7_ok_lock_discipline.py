"""R7 must pass: consistent lock order, blocking outside the lock."""

import threading
from concurrent.futures import ThreadPoolExecutor

_lock_a = threading.Lock()
_lock_b = threading.Lock()


def forward() -> None:
    with _lock_a:
        with _lock_b:
            pass


def also_forward(pool: ThreadPoolExecutor, jobs: list[int]) -> list[str]:
    with _lock_a:
        with _lock_b:
            pending = list(jobs)
    handles = [pool.submit(str, job) for job in pending]
    return [handle.result(timeout=30.0) for handle in handles]
