"""R3 must flag: bare asserts vanish under ``python -O``."""


def check(x: int) -> int:
    assert x > 0
    if x > 10:
        raise ValueError("too big")
    return x
