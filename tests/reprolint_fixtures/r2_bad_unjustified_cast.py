"""R2 must flag: a narrowing cast outside any sanctioned helper."""

import numpy as np


def narrow(values: np.ndarray) -> np.ndarray:
    return values.astype(np.int8)
