"""R5 must flag: bare ndarray annotations and dtype-less constructors."""

import numpy as np

__all__ = ["kernel"]


def kernel(tables: np.ndarray, scale):
    out = np.zeros(16)
    return out * scale
