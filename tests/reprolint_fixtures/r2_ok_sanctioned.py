"""R2 must pass: casts inside sanctioned helpers or carrying a pragma."""

import numpy as np


def quantize_table(values: np.ndarray) -> np.ndarray:
    return np.floor(values).astype(np.int8)


def masked(values: np.ndarray) -> np.ndarray:
    nibbles = values & 0x0F
    return nibbles.astype(np.uint8)  # reprolint: narrowing=exact
