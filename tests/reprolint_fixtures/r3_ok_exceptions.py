"""R3 must pass: library errors come from the repro hierarchy."""

from repro.exceptions import ConfigurationError


def check(x: int) -> int:
    if x <= 0:
        raise ConfigurationError("x must be positive")
    return x
