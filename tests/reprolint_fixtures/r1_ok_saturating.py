"""R1 must pass: widened adds and the sanctioned saturating helper."""

import numpy as np


def widened_fold() -> np.ndarray:
    a = np.zeros(16, dtype=np.int8)
    b = np.full(16, 100, dtype=np.int8)
    total = a.astype(np.int16) + b.astype(np.int16)
    total += b.astype(np.int16)
    return total


def saturating_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    wide = a.astype(np.int16) + b.astype(np.int16)
    return np.clip(wide, -128, 127).astype(np.int8)
