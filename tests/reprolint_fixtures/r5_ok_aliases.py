"""R5 must pass: alias annotations agreeing with constructed dtypes."""

import numpy as np

from repro.dtypes import Float32Array

__all__ = ["kernel"]


def kernel(tables: Float32Array, scale: float) -> Float32Array:
    out: Float32Array = np.zeros(16, dtype=np.float32)
    return out * scale
