"""R5 must flag: the declared alias dtype contradicts the constructor."""

import numpy as np

from repro.dtypes import Int8Array

__all__ = ["make"]


def make() -> Int8Array:
    return np.zeros(4, dtype=np.float64)
