"""R8 must pass: only sanctioned picklables cross the process boundary."""

from concurrent.futures import ProcessPoolExecutor
from pathlib import Path


def _scan(path: str, rows: tuple) -> int:
    return len(rows)


def fan_out(path: Path, rows: list) -> int:
    with ProcessPoolExecutor() as pool:
        future = pool.submit(_scan, str(path), tuple(rows))
        return future.result(timeout=30.0)
