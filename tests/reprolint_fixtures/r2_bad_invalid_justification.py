"""R2 must flag: the justification must name a real rounding direction."""

import numpy as np


def narrow(values: np.ndarray) -> np.ndarray:
    return values.astype(np.int8)  # reprolint: narrowing=approximately
