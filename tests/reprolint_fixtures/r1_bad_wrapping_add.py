"""R1 must flag: raw adds on 8-bit arrays wrap modulo 256."""

import numpy as np


def broken_fold() -> np.ndarray:
    a = np.zeros(16, dtype=np.int8)
    b = np.full(16, 100, dtype=np.int8)
    total = a + b
    total += b
    return total
