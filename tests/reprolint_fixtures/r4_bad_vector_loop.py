"""R4 must flag: Python-level element loops over arrays."""

import numpy as np


def slow_scan() -> int:
    codes = np.zeros(64, dtype=np.uint8)
    total = 0
    for byte in codes:
        total = total + int(byte)
    for i in range(len(codes)):
        total = total + int(codes[i])
    return total
