"""R9 must flag: a gather that can hang forever on a dead worker."""

from concurrent.futures import ThreadPoolExecutor


def gather(pool: ThreadPoolExecutor, jobs: list[int]) -> list[str]:
    pending = [pool.submit(str, job) for job in jobs]
    out: list[str] = []
    for handle in pending:
        out.append(handle.result())
    return out
