"""R7 must flag: two paths acquire the same locks in opposite order."""

import threading

_lock_a = threading.Lock()
_lock_b = threading.Lock()


def forward() -> None:
    with _lock_a:
        with _lock_b:
            pass


def backward() -> None:
    with _lock_b:
        with _lock_a:
            pass
