"""R8 must flag: a memmap-backed array shipped into a process pool."""

from concurrent.futures import ProcessPoolExecutor

import numpy as np


def _scan(codes: object) -> int:
    return len(repr(codes))


def fan_out(path: str) -> int:
    codes = np.memmap(path, dtype=np.uint8)
    with ProcessPoolExecutor() as pool:
        future = pool.submit(_scan, codes)
        return future.result(timeout=30.0)
