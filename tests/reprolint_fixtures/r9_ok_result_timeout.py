"""R9 must pass: every gather passes a deadline (or justifies not to)."""

from concurrent.futures import ThreadPoolExecutor


def gather(pool: ThreadPoolExecutor, jobs: list[int]) -> list[str]:
    pending = [pool.submit(str, job) for job in jobs]
    out: list[str] = []
    for handle in pending:
        out.append(handle.result(timeout=30.0))
    return out


def gather_unbounded(pool: ThreadPoolExecutor, jobs: list[int]) -> list[str]:
    pending = [pool.submit(str, job) for job in jobs]
    return [
        handle.result()  # reprolint: disable=R9 (caller manages the deadline)
        for handle in pending
    ]
