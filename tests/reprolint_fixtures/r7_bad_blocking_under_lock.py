"""R7 must flag: a blocking submit while the module lock is held."""

import threading
from concurrent.futures import ThreadPoolExecutor

_lock = threading.Lock()


def fan_out(pool: ThreadPoolExecutor, jobs: list[int]) -> None:
    with _lock:
        for job in jobs:
            pool.submit(print, job)
