"""Shared fixtures: one small synthetic workload reused across the suite.

Everything is deterministic (fixed seeds) and sized to keep the whole
suite fast while staying large enough that grouping, pruning and the
simulator kernels exercise their real code paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import IVFADCIndex, ProductQuantizer, VectorDataset


@pytest.fixture(scope="session")
def dataset() -> VectorDataset:
    """Small SIFT-like dataset: 3000 learn / 12000 base / 8 queries."""
    return VectorDataset.synthetic(3000, 12000, 8, seed=42)


@pytest.fixture(scope="session")
def pq(dataset) -> ProductQuantizer:
    """A fitted PQ 8×8 quantizer (few k-means iterations for speed)."""
    return ProductQuantizer(m=8, bits=8, max_iter=4, seed=1).fit(dataset.learn)


@pytest.fixture(scope="session")
def index(dataset, pq) -> IVFADCIndex:
    """A 2-partition IVFADC index over the base set."""
    return IVFADCIndex(pq, n_partitions=2, seed=2).add(dataset.base)


@pytest.fixture(scope="session")
def query(dataset) -> np.ndarray:
    return dataset.queries[0]


@pytest.fixture(scope="session")
def routed(index, query):
    """(partition, tables) pair for the session query."""
    pid = index.route(query)[0]
    tables = index.distance_tables_for(query, pid)
    return index.partitions[pid], tables


@pytest.fixture(scope="session")
def partition(routed):
    return routed[0]


@pytest.fixture(scope="session")
def tables(routed):
    return routed[1]


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)
