"""Unit tests for distance-table sizing and statistics (Table 1)."""

import numpy as np

from repro.pq.distance_tables import (
    distance_table_bytes,
    pq_configurations_for_bits,
    table_stats,
)


class TestTableSizing:
    def test_pq8x8_fits_l1(self):
        # PQ 8x8: 8 * 256 * 4 bytes = 8 KiB <= 32 KiB L1 (Table 1).
        assert distance_table_bytes(8, 8) == 8 * 1024
        assert distance_table_bytes(8, 8) <= 32 * 1024

    def test_pq16x4_fits_l1(self):
        # PQ 16x4: 16 * 16 * 4 = 1 KiB.
        assert distance_table_bytes(16, 4) == 1024

    def test_pq4x16_needs_l3(self):
        # PQ 4x16: 4 * 65536 * 4 = 1 MiB — beyond L1 and L2 (Table 1).
        size = distance_table_bytes(4, 16)
        assert size == 1024 * 1024
        assert size > 256 * 1024

    def test_configurations_for_64_bits(self):
        configs = pq_configurations_for_bits(64)
        assert (16, 4) in configs
        assert (8, 8) in configs
        assert (4, 16) in configs
        for m, bits in configs:
            assert m * bits == 64


class TestTableStats:
    def test_min_max_and_sum_of_maxima(self):
        tables = np.array([[1.0, 5.0, 3.0], [2.0, 0.5, 4.0]])
        stats = table_stats(tables)
        assert stats.global_min == 0.5
        assert stats.global_max == 5.0
        assert stats.sum_of_maxima == 9.0
        assert stats.naive_qmax == 9.0
        np.testing.assert_allclose(stats.per_table_min, [1.0, 0.5])
        np.testing.assert_allclose(stats.per_table_max, [5.0, 4.0])

    def test_on_real_tables(self, pq, query):
        tables = pq.distance_tables(query)
        stats = table_stats(tables)
        assert stats.global_min >= 0
        assert stats.sum_of_maxima >= stats.global_max
        # The naive qmax is the largest representable ADC distance.
        assert stats.naive_qmax >= tables.max()
