"""Integration tests: the four PQ Scan baselines agree exactly."""

import numpy as np
import pytest

from repro import Partition
from repro.scan import (
    SCANNERS,
    AVXScanner,
    GatherScanner,
    LibpqScanner,
    NaiveScanner,
)


class TestScannerRegistry:
    def test_all_four_implementations(self):
        assert set(SCANNERS) == {"naive", "libpq", "avx", "gather"}


class TestScannerAgreement:
    @pytest.mark.parametrize("name", ["libpq", "avx", "gather"])
    def test_matches_naive(self, name, tables, partition):
        reference = NaiveScanner().scan(tables, partition, topk=10)
        result = SCANNERS[name]().scan(tables, partition, topk=10)
        assert result.same_neighbors(reference)

    @pytest.mark.parametrize("topk", [1, 3, 100])
    def test_topk_sizes(self, topk, tables, partition):
        result = NaiveScanner().scan(tables, partition, topk=topk)
        assert len(result.ids) == min(topk, len(partition))
        assert (np.diff(result.distances) >= -1e-12).all()

    def test_scalar_reference_paths(self, tables, partition):
        """The literal Algorithm-1 loops agree with the vectorized scans."""
        sample = Partition(partition.codes[:200], partition.ids[:200])
        for scanner in (NaiveScanner(), LibpqScanner()):
            fast = scanner.scan(tables, sample, topk=5)
            slow = scanner.scan_scalar(tables, sample, topk=5)
            assert fast.same_neighbors(slow)

    def test_result_distances_are_adc(self, tables, partition, pq):
        from repro.pq.adc import adc_distances

        result = NaiveScanner().scan(tables, partition, topk=5)
        id_to_row = {int(i): r for r, i in enumerate(partition.ids)}
        rows = [id_to_row[int(i)] for i in result.ids]
        expected = adc_distances(tables, partition.codes[rows])
        np.testing.assert_allclose(result.distances, expected, rtol=1e-12)

    def test_empty_partition(self, tables):
        empty = Partition(np.zeros((0, 8), dtype=np.uint8), np.zeros(0))
        for name, cls in SCANNERS.items():
            result = cls().scan(tables, empty, topk=5)
            assert len(result.ids) == 0, name
            assert result.n_scanned == 0

    def test_single_vector_partition(self, tables, partition):
        single = Partition(partition.codes[:1], partition.ids[:1])
        result = AVXScanner().scan(tables, single, topk=5)
        assert len(result.ids) == 1

    def test_non_multiple_of_lanes(self, tables, partition):
        """Transposed scanners must handle ragged tails correctly."""
        for n in (7, 9, 15, 17):
            ragged = Partition(partition.codes[:n], partition.ids[:n])
            ref = NaiveScanner().scan(tables, ragged, topk=3)
            for cls in (AVXScanner, GatherScanner):
                assert cls().scan(tables, ragged, topk=3).same_neighbors(ref)


class TestInstructionProfiles:
    def test_naive_profile_matches_paper(self):
        p = NaiveScanner().profile()
        assert p.l1_loads == 16  # 8 mem1 + 8 mem2 (Section 3.1)
        assert p.mem1_loads == 8

    def test_libpq_profile_matches_paper(self):
        p = LibpqScanner().profile()
        assert p.l1_loads == 9  # 1 mem1 + 8 mem2 (Section 3.1)
        assert p.mem1_loads == 1

    def test_simd_profiles_amortize_index_loads(self):
        for cls in (AVXScanner, GatherScanner):
            p = cls().profile()
            assert p.mem1_loads == 1
            assert p.simd_adds > 0
