"""Unit tests for the OPQ extension (rotated product quantization)."""

import numpy as np
import pytest

from repro import OptimizedProductQuantizer, ProductQuantizer
from repro.exceptions import NotFittedError
from repro.pq.adc import adc_distances
from repro.scan import NaiveScanner
from repro.ivf.partition import Partition


@pytest.fixture(scope="module")
def correlated_data(rng=np.random.default_rng(9)):
    """Data with strong cross-subspace correlation (OPQ's sweet spot)."""
    latent = rng.normal(size=(3000, 8))
    mix = rng.normal(size=(8, 32))
    return latent @ mix + rng.normal(scale=0.05, size=(3000, 32))


@pytest.fixture(scope="module")
def opq(correlated_data):
    return OptimizedProductQuantizer(
        m=4, bits=6, n_rotations=4, max_iter=8, seed=0
    ).fit(correlated_data)


class TestOPQ:
    def test_rotation_is_orthogonal(self, opq):
        r = opq.rotation
        np.testing.assert_allclose(r @ r.T, np.eye(r.shape[0]), atol=1e-8)

    def test_reduces_error_versus_plain_pq(self, correlated_data, opq):
        pq = ProductQuantizer(m=4, bits=6, max_iter=8, seed=0)
        pq.fit(correlated_data)
        sample = correlated_data[:500]
        assert opq.quantization_error(sample) < pq.quantization_error(sample)

    def test_encode_decode_shapes(self, opq, correlated_data):
        codes = opq.encode(correlated_data[:10])
        assert codes.shape == (10, 4)
        assert opq.decode(codes).shape == (10, 32)

    def test_distance_tables_drop_into_scanners(self, opq, correlated_data):
        """The paper's claim: Fast Scan adapts to OPQ unchanged, because
        OPQ also produces per-query distance tables."""
        codes = opq.encode(correlated_data[:500])
        query = correlated_data[600]
        tables = opq.distance_tables(query)
        part = Partition(codes, np.arange(500), 0)
        result = NaiveScanner().scan(tables, part, topk=5)
        # ADC on rotated tables equals distance to reconstruction.
        recon = opq.decode(codes[result.ids])
        true = np.sum((recon - query) ** 2, axis=1)
        np.testing.assert_allclose(result.distances, true, rtol=1e-8)

    def test_unfitted_raises(self):
        with pytest.raises(NotFittedError):
            _ = OptimizedProductQuantizer().rotation


class TestOPQWithFastScan:
    """The paper's claim (§7): adapting PQ Fast Scan to optimized
    product quantizers is straightforward because they also rely on
    distance tables."""

    def test_fast_scan_on_opq_codes_is_exact(self, opq, correlated_data):
        from repro import Partition, PQFastScanner

        codes = opq.encode(correlated_data[:1500])
        part = Partition(codes, np.arange(1500))
        query = correlated_data[1600]
        tables = opq.distance_tables(query)
        ref = NaiveScanner().scan(tables, part, topk=10)
        # opq.pq has 6-bit sub-quantizers here; build an 8-bit OPQ for
        # the fast scanner's PQ 8x8 requirement.
        opq8 = OptimizedProductQuantizer(
            m=8, bits=8, n_rotations=2, max_iter=4, seed=1
        ).fit(np.tile(correlated_data, (1, 4)))
        data = np.tile(correlated_data, (1, 4))
        codes8 = opq8.encode(data[:1500])
        part8 = Partition(codes8, np.arange(1500))
        tables8 = opq8.distance_tables(data[1600])
        ref8 = NaiveScanner().scan(tables8, part8, topk=10)
        scanner = PQFastScanner(opq8.pq, keep=0.02, group_components=2, seed=0)
        got = scanner.scan(tables8, part8, topk=10)
        assert got.same_neighbors(ref8)
        assert len(ref.ids) == 10  # sanity for the 6-bit variant too
