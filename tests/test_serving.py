"""Serving-layer tests: coalescing, deadline flush, shedding, identity.

The micro-batching server is pure stdlib asyncio, so every test drives
it with ``asyncio.run`` — no event-loop plugin needed. Timing-sensitive
behavior (deadline flush) is tested with generous margins; batching
*bounds* are exact and asserted exactly.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.obs import observability_session
from repro.search import ANNSearcher, SearchResult
from repro.serve import (
    FLUSH_DRAIN,
    STATUS_OK,
    STATUS_OVERLOAD,
    MicroBatchServer,
    ServeConfig,
    ServedResult,
)


def _dummy_result(value: int = 0) -> SearchResult:
    return SearchResult(
        ids=np.array([value], dtype=np.int64),
        distances=np.array([float(value)], dtype=np.float64),
        n_scanned=1,
        n_pruned=0,
        probed=(0,),
    )


def _echo_batch(queries: np.ndarray) -> list[SearchResult]:
    """One dummy result per row, tagging the query's first component."""
    return [_dummy_result(int(q[0])) for q in queries]


def _results_equal(a: SearchResult, b: SearchResult) -> bool:
    return (
        a.ids.tobytes() == b.ids.tobytes()
        and a.distances.tobytes() == b.distances.tobytes()
        and a.n_scanned == b.n_scanned
        and a.n_pruned == b.n_pruned
        and a.probed == b.probed
    )


class TestServeConfig:
    def test_defaults_valid(self):
        config = ServeConfig()
        assert config.max_batch >= 1
        assert config.max_queue >= 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_batch": 0},
            {"max_delay_s": -0.1},
            {"max_queue": 0},
            {"max_concurrent_batches": 0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            ServeConfig(**kwargs)


class TestCoalescing:
    def test_batch_size_bounded_and_size_flush_triggers(self):
        seen_sizes: list[int] = []

        def batch_fn(queries: np.ndarray) -> list[SearchResult]:
            seen_sizes.append(len(queries))
            return _echo_batch(queries)

        # A long deadline means only the size bound can flush promptly:
        # 16 concurrent clients over max_batch=4 must produce batches
        # of exactly 4, well before the 60s deadline.
        config = ServeConfig(max_batch=4, max_delay_s=60.0)

        async def scenario() -> list[ServedResult]:
            async with MicroBatchServer(batch_fn, config) as server:
                return await asyncio.gather(
                    *(
                        server.search(np.array([float(i), 0.0]))
                        for i in range(16)
                    )
                )

        results = asyncio.run(scenario())
        assert all(r.ok for r in results)
        assert seen_sizes and max(seen_sizes) <= 4
        assert sum(seen_sizes) == 16
        assert all(r.batch_size <= 4 for r in results)
        # Every client got its own answer back, not a neighbor's.
        for i, r in enumerate(results):
            assert r.result is not None
            assert r.result.ids[0] == i

    def test_deadline_flush_serves_lone_request(self):
        config = ServeConfig(max_batch=64, max_delay_s=0.02)

        async def scenario() -> tuple[ServedResult, float]:
            async with MicroBatchServer(_echo_batch, config) as server:
                loop = asyncio.get_running_loop()
                start = loop.time()
                result = await server.search(np.array([7.0, 0.0]))
                return result, loop.time() - start

        result, elapsed = asyncio.run(scenario())
        # A lone request can never reach max_batch; only the deadline
        # can flush it. Generous upper bound for slow CI machines.
        assert result.ok
        assert result.batch_size == 1
        assert elapsed < 5.0

    def test_drain_on_stop_answers_admitted_requests(self):
        config = ServeConfig(max_batch=64, max_delay_s=60.0)

        async def scenario() -> list[ServedResult]:
            server = MicroBatchServer(_echo_batch, config)
            await server.start()
            tasks = [
                asyncio.create_task(server.search(np.array([float(i), 0.0])))
                for i in range(5)
            ]
            await asyncio.sleep(0.05)  # let the coalescer collect them
            await server.stop()  # must flush the partial batch (drain)
            return await asyncio.gather(*tasks)

        results = asyncio.run(scenario())
        assert all(r.ok for r in results)
        assert not any(r.batch_size > 5 for r in results)


class TestAdmissionControl:
    def test_shed_on_full_returns_overload(self):
        release = threading.Event()

        def blocking_batch(queries: np.ndarray) -> list[SearchResult]:
            release.wait(timeout=30)
            return _echo_batch(queries)

        config = ServeConfig(
            max_batch=1, max_delay_s=0.001, max_queue=2,
            max_concurrent_batches=1,
        )

        async def scenario() -> tuple[list[ServedResult], ServedResult]:
            async with MicroBatchServer(blocking_batch, config) as server:
                # First request occupies the only flush slot (its batch
                # blocks inside blocking_batch); two more fill the
                # bounded queue while the coalescer waits for a slot.
                first = asyncio.create_task(
                    server.search(np.array([0.0, 0.0]))
                )
                await asyncio.sleep(0.05)
                queued = [
                    asyncio.create_task(
                        server.search(np.array([float(i), 0.0]))
                    )
                    for i in (1, 2)
                ]
                await asyncio.sleep(0.05)
                assert server.depth == 2
                # The queue is full: this one must shed immediately.
                shed = await server.search(np.array([9.0, 0.0]))
                release.set()
                done = await asyncio.gather(first, *queued)
                return done, shed

        done, shed = asyncio.run(scenario())
        assert shed.status == STATUS_OVERLOAD
        assert shed.result is None
        assert all(r.status == STATUS_OK for r in done)

    def test_error_in_batch_propagates_to_clients(self):
        def broken_batch(queries: np.ndarray) -> list[SearchResult]:
            raise ValueError("scanner exploded")

        config = ServeConfig(max_batch=4, max_delay_s=0.001)

        async def scenario() -> None:
            async with MicroBatchServer(broken_batch, config) as server:
                with pytest.raises(ValueError, match="scanner exploded"):
                    await server.search(np.array([0.0, 0.0]))

        asyncio.run(scenario())

    def test_search_requires_running_server(self):
        server = MicroBatchServer(_echo_batch)

        async def scenario() -> None:
            with pytest.raises(ConfigurationError):
                await server.search(np.array([0.0, 0.0]))

        asyncio.run(scenario())

    def test_rejects_non_1d_queries(self):
        async def scenario() -> None:
            async with MicroBatchServer(_echo_batch) as server:
                with pytest.raises(ConfigurationError):
                    await server.search(np.zeros((2, 2)))

        asyncio.run(scenario())


class TestSequentialIdentity:
    """Served results must be byte-identical to executor="sequential"."""

    @pytest.mark.parametrize("executor", ["batch", "sequential", "process"])
    def test_identity_across_executors(self, index, dataset, executor):
        queries = dataset.queries
        with ANNSearcher(index) as searcher:
            baseline = searcher.search(
                queries, topk=5, nprobe=2, executor="sequential"
            )
            config = ServeConfig(max_batch=4, max_delay_s=0.002)
            server = MicroBatchServer.for_searcher(
                searcher,
                topk=5,
                nprobe=2,
                executor=executor,
                config=config,
            )

            async def scenario() -> list[ServedResult]:
                async with server:
                    return await asyncio.gather(
                        *(server.search(q) for q in queries)
                    )

            results = asyncio.run(scenario())
        assert all(r.ok for r in results)
        for served, expected in zip(results, baseline):
            assert served.result is not None
            assert _results_equal(served.result, expected)

    def test_for_searcher_rejects_unknown_executor(self, index):
        with ANNSearcher(index) as searcher:
            with pytest.raises(ConfigurationError):
                MicroBatchServer.for_searcher(searcher, executor="warp")


class TestServeObservability:
    def test_request_and_flush_metrics_recorded(self):
        config = ServeConfig(max_batch=4, max_delay_s=0.005)

        async def scenario(server: MicroBatchServer) -> None:
            async with server:
                await asyncio.gather(
                    *(
                        server.search(np.array([float(i), 0.0]))
                        for i in range(8)
                    )
                )

        with observability_session() as obs:
            server = MicroBatchServer(_echo_batch, config)
            asyncio.run(scenario(server))
            registry = obs.metrics
            requests = registry.get("repro_serve_requests_total")
            assert requests.value(status=STATUS_OK) == 8.0
            flushes = registry.get("repro_serve_flushes_total")
            total_flushes = sum(
                flushes.value(reason=reason)
                for reason in ("size", "deadline", "drain")
            )
            assert total_flushes == server.n_flushes >= 2
            histograms = registry.snapshot()["histograms"]
            assert "repro_serve_latency_seconds" in histograms
            assert "repro_serve_queue_wait_seconds" in histograms
            assert "repro_serve_batch_size" in histograms
            # Eight executed requests → eight latency observations.
            (latency_series,) = histograms["repro_serve_latency_seconds"]
            assert latency_series["count"] == 8

    def test_shed_requests_counted(self):
        release = threading.Event()

        def blocking_batch(queries: np.ndarray) -> list[SearchResult]:
            release.wait(timeout=30)
            return _echo_batch(queries)

        config = ServeConfig(
            max_batch=1, max_delay_s=0.001, max_queue=1,
            max_concurrent_batches=1,
        )

        async def scenario(server: MicroBatchServer) -> None:
            async with server:
                first = asyncio.create_task(
                    server.search(np.array([0.0, 0.0]))
                )
                await asyncio.sleep(0.05)
                second = asyncio.create_task(
                    server.search(np.array([1.0, 0.0]))
                )
                await asyncio.sleep(0.05)
                shed = await server.search(np.array([2.0, 0.0]))
                assert shed.status == STATUS_OVERLOAD
                release.set()
                await asyncio.gather(first, second)

        with observability_session() as obs:
            server = MicroBatchServer(blocking_batch, config)
            asyncio.run(scenario(server))
            requests = obs.metrics.get("repro_serve_requests_total")
            assert requests.value(status=STATUS_OVERLOAD) == 1.0
            assert server.n_shed == 1


class TestDrainReason:
    def test_stop_flushes_with_drain_reason(self):
        config = ServeConfig(max_batch=64, max_delay_s=60.0)

        async def scenario(server: MicroBatchServer) -> None:
            await server.start()
            task = asyncio.create_task(
                server.search(np.array([3.0, 0.0]))
            )
            await asyncio.sleep(0.05)
            await server.stop()
            result = await task
            assert result.ok

        with observability_session() as obs:
            server = MicroBatchServer(_echo_batch, config)
            asyncio.run(scenario(server))
            flushes = obs.metrics.get("repro_serve_flushes_total")
            assert flushes.value(reason=FLUSH_DRAIN) == 1.0
