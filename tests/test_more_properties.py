"""Additional property-based tests: quantizer math and dataset IO."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.data.io import read_bvecs, read_fvecs, write_bvecs, write_fvecs
from repro.pq.kmeans import assign_to_centroids, squared_distances
from repro.scan.layout import extract_component, pack_codes_words

SLOW = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

POINTS = hnp.arrays(
    np.float64, st.tuples(st.integers(2, 40), st.integers(1, 8)),
    elements=st.floats(-1e3, 1e3, allow_nan=False),
)


class TestDistanceProperties:
    @given(points=POINTS)
    @SLOW
    def test_distances_nonnegative_and_symmetric(self, points):
        d = squared_distances(points, points)
        assert (d >= 0).all()
        np.testing.assert_allclose(d, d.T, atol=1e-6)
        assert np.allclose(np.diag(d), 0.0, atol=1e-6)

    @given(points=POINTS, seed=st.integers(0, 999))
    @SLOW
    def test_assignment_is_argmin(self, points, seed):
        rng = np.random.default_rng(seed)
        centroids = points[rng.integers(0, len(points), size=3)]
        labels, dists = assign_to_centroids(points, centroids)
        full = squared_distances(points, centroids)
        np.testing.assert_allclose(dists, full.min(axis=1), rtol=1e-9)
        # Assigned distance equals the minimum (label may differ on ties).
        chosen = full[np.arange(len(points)), labels]
        np.testing.assert_allclose(chosen, full.min(axis=1), rtol=1e-9)

    @given(points=POINTS)
    @SLOW
    def test_triangle_consistency_with_numpy(self, points):
        ref = ((points[:, None, :] - points[None, :, :]) ** 2).sum(axis=2)
        np.testing.assert_allclose(
            squared_distances(points, points), ref, rtol=1e-6, atol=1e-6
        )


class TestIOProperties:
    @given(
        data=hnp.arrays(
            np.uint8, st.tuples(st.integers(1, 50), st.integers(1, 32)),
            elements=st.integers(0, 255),
        )
    )
    @SLOW
    def test_bvecs_roundtrip(self, data, tmp_path_factory):
        path = tmp_path_factory.mktemp("io") / "v.bvecs"
        write_bvecs(path, data)
        np.testing.assert_array_equal(read_bvecs(path), data)

    @given(
        data=hnp.arrays(
            np.float32, st.tuples(st.integers(1, 50), st.integers(1, 32)),
            elements=st.floats(-1e6, 1e6, allow_nan=False, width=32),
        )
    )
    @SLOW
    def test_fvecs_roundtrip(self, data, tmp_path_factory):
        path = tmp_path_factory.mktemp("io") / "v.fvecs"
        write_fvecs(path, data)
        np.testing.assert_array_equal(read_fvecs(path), data)


class TestWordPackingProperty:
    @given(
        codes=hnp.arrays(
            np.uint8, st.tuples(st.integers(1, 60), st.just(8)),
            elements=st.integers(0, 255),
        ),
        j=st.integers(0, 7),
    )
    @SLOW
    def test_extract_matches_column(self, codes, j):
        words = pack_codes_words(codes)
        np.testing.assert_array_equal(extract_component(words, j), codes[:, j])
