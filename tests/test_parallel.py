"""Tests for the zero-copy process-pool executor (repro.parallel)."""

import warnings

import numpy as np
import pytest

from repro import (
    ANNSearcher,
    NaiveScanner,
    PQFastScanner,
    QuantizationOnlyScanner,
    save_index,
)
from repro.engine import Engine, EngineConfig
from repro.exceptions import ConfigurationError
from repro.obs import observability_session
from repro.parallel import ProcessBatchExecutor, ScannerSpec
from repro.scan.base import PartitionScanner
from repro.search import BatchExecutor
from repro.shard import ScatterGatherExecutor, ShardedIndex


def _scanner_for(name, idx):
    if name == "naive":
        return NaiveScanner()
    if name == "fastpq":
        return PQFastScanner(idx.pq, keep=0.01, seed=0)
    return QuantizationOnlyScanner(idx.pq, keep=0.01)


def _assert_results_equal(a, b):
    assert len(a) == len(b)
    for ra, rb in zip(a, b):
        assert ra.ids.tobytes() == rb.ids.tobytes()
        assert ra.distances.tobytes() == rb.distances.tobytes()
        assert ra.n_scanned == rb.n_scanned
        assert ra.n_pruned == rb.n_pruned
        assert ra.probed == rb.probed


@pytest.fixture(scope="module")
def index_artifact(index, tmp_path_factory):
    path = tmp_path_factory.mktemp("parallel") / "index.npz"
    save_index(index, path)
    return path


class TestScannerSpec:
    def test_fastpq_round_trip(self, pq):
        scanner = PQFastScanner(
            pq, keep=0.02, seed=3, qmax_bound="naive", prepared_cache_size=7
        )
        spec = ScannerSpec.for_scanner(scanner)
        rebuilt = spec.build(pq)
        assert isinstance(rebuilt, PQFastScanner)
        assert rebuilt.keep == scanner.keep
        assert rebuilt.seed == scanner.seed
        assert rebuilt.qmax_bound == scanner.qmax_bound
        assert rebuilt.prepared_cache_size == scanner.prepared_cache_size

    def test_quantization_only_round_trip(self, pq):
        scanner = QuantizationOnlyScanner(pq, keep=0.03, chunk=128)
        rebuilt = ScannerSpec.for_scanner(scanner).build(pq)
        assert isinstance(rebuilt, QuantizationOnlyScanner)
        assert rebuilt.keep == scanner.keep
        assert rebuilt.chunk == scanner.chunk

    def test_registry_scanner_round_trip(self, pq):
        rebuilt = ScannerSpec.for_scanner(NaiveScanner()).build(pq)
        assert isinstance(rebuilt, NaiveScanner)

    def test_unsupported_scanner_rejected(self):
        class Custom(PartitionScanner):
            name = "custom"

            def scan(self, tables, partition, topk):  # pragma: no cover
                raise NotImplementedError

            def profile(self):  # pragma: no cover
                raise NotImplementedError

        with pytest.raises(ConfigurationError, match="reconstructed"):
            ScannerSpec.for_scanner(Custom())

    def test_unknown_kind_rejected(self, pq):
        with pytest.raises(ConfigurationError, match="unknown scanner kind"):
            ScannerSpec(kind="nope").build(pq)

    def test_specs_are_picklable(self, pq):
        import pickle

        spec = ScannerSpec.for_scanner(PQFastScanner(pq, keep=0.01))
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestProcessExecutorEquivalence:
    @pytest.mark.parametrize("scanner_name", ["naive", "fastpq", "qonly"])
    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_byte_identical_to_sequential(
        self, index, dataset, index_artifact, scanner_name, n_workers
    ):
        baseline = ANNSearcher(index, _scanner_for(scanner_name, index)).search(
            dataset.queries, topk=10, nprobe=2, executor="sequential"
        )
        with ProcessBatchExecutor(
            index_artifact,
            _scanner_for(scanner_name, index),
            n_workers=n_workers,
            index=index,
        ) as executor:
            _assert_results_equal(
                baseline, executor.run(dataset.queries, topk=10, nprobe=2)
            )

    def test_byte_identical_to_thread_executor(
        self, index, dataset, index_artifact
    ):
        thread = BatchExecutor(index, NaiveScanner(), n_workers=1)
        with ProcessBatchExecutor(
            index_artifact, NaiveScanner(), index=index
        ) as executor:
            _assert_results_equal(
                thread.run(dataset.queries, topk=10, nprobe=2),
                executor.run(dataset.queries, topk=10, nprobe=2),
            )

    def test_results_stable_across_repeated_runs(
        self, index, dataset, index_artifact
    ):
        with ProcessBatchExecutor(
            index_artifact, NaiveScanner(), n_workers=2, index=index
        ) as executor:
            first = executor.run(dataset.queries, topk=10, nprobe=2)
            second = executor.run(dataset.queries, topk=10, nprobe=2)
            _assert_results_equal(first, second)


class TestProcessExecutorLifecycle:
    def test_report_and_worker_stats(self, index, dataset, index_artifact):
        with ProcessBatchExecutor(
            index_artifact, NaiveScanner(), n_workers=2, index=index
        ) as executor:
            results, report = executor.run_with_report(
                dataset.queries, topk=10, nprobe=2
            )
            assert len(results) == len(dataset.queries)
            assert report.n_queries == len(dataset.queries)
            assert report.n_workers == 2
            assert len(report.worker_stats) == executor.pool_size
            total_scans = sum(s.n_scans for s in report.worker_stats)
            assert total_scans == sum(len(r.probed) for r in results)
            assert sum(s.busy_time_s for s in report.worker_stats) > 0.0

    def test_pool_size_clamped_to_cpus(self, index, index_artifact):
        import os

        cpus = len(os.sched_getaffinity(0))
        with ProcessBatchExecutor(
            index_artifact, NaiveScanner(), n_workers=cpus + 7, index=index
        ) as executor:
            assert executor.n_workers == cpus + 7
            assert executor.pool_size == cpus

    def test_invalid_n_workers(self, index, index_artifact):
        with pytest.raises(ConfigurationError, match="n_workers"):
            ProcessBatchExecutor(
                index_artifact, NaiveScanner(), n_workers=0, index=index
            )

    def test_closed_executor_rejects_runs(self, index, dataset, index_artifact):
        executor = ProcessBatchExecutor(
            index_artifact, NaiveScanner(), index=index
        )
        executor.close()
        executor.close()  # idempotent
        with pytest.raises(ConfigurationError, match="closed"):
            executor.run(dataset.queries, topk=5, nprobe=1)

    def test_from_index_cleans_temp_artifact(self, index, dataset):
        executor = ProcessBatchExecutor.from_index(index, NaiveScanner())
        tempdir = executor._tempdir
        assert tempdir is not None
        results = executor.run(dataset.queries, topk=5, nprobe=1)
        assert len(results) == len(dataset.queries)
        executor.close()
        import pathlib

        assert not pathlib.Path(tempdir.name).exists()


class TestSearcherProcessExecutor:
    def test_search_executor_process_matches_batch(self, index, dataset):
        searcher = ANNSearcher(index, NaiveScanner())
        try:
            _assert_results_equal(
                searcher.search(dataset.queries, topk=10, nprobe=2),
                searcher.search(
                    dataset.queries, topk=10, nprobe=2, executor="process"
                ),
            )
        finally:
            searcher.close()

    def test_process_rerank_matches_batch_rerank(self, index, dataset):
        searcher = ANNSearcher(index, NaiveScanner(), vectors=dataset.base)
        try:
            a = searcher.search(
                dataset.queries, topk=5, nprobe=2, rerank=20
            )
            b = searcher.search(
                dataset.queries, topk=5, nprobe=2, rerank=20, executor="process"
            )
            _assert_results_equal(a, b)
        finally:
            searcher.close()

    def test_executor_pool_reused_across_searches(self, index, dataset):
        with ANNSearcher(index, NaiveScanner()) as searcher:
            searcher.search(dataset.queries, topk=5, nprobe=1, executor="process")
            executor = searcher._process_executors[1]
            searcher.search(dataset.queries, topk=5, nprobe=1, executor="process")
            assert searcher._process_executors[1] is executor

    def test_unknown_executor_rejected(self, index, dataset):
        with pytest.raises(ConfigurationError, match="unknown executor"):
            ANNSearcher(index, NaiveScanner()).search(
                dataset.queries, topk=5, nprobe=1, executor="fibers"
            )


class TestThreadExecutorWarning:
    def test_multi_worker_threads_warn(self, index):
        with pytest.warns(RuntimeWarning, match="process backend"):
            BatchExecutor(index, NaiveScanner(), n_workers=4)

    def test_single_worker_does_not_warn(self, index):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            BatchExecutor(index, NaiveScanner(), n_workers=1)


class TestPreparedCacheBound:
    def test_cap_validated(self, pq):
        with pytest.raises(ConfigurationError, match="prepared_cache_size"):
            PQFastScanner(pq, prepared_cache_size=0)

    def test_lru_eviction_under_cap(self, pq, index):
        scanner = PQFastScanner(pq, keep=0.01, prepared_cache_size=1)
        first, second = index.partitions[0], index.partitions[1]
        scanner.prepared(first)
        assert scanner.prepared_evictions == 0
        scanner.prepared(second)
        assert scanner.prepared_evictions == 1
        assert len(scanner._prepared) == 1
        # the survivor is the most recently used layout
        assert scanner.prepared(second) is scanner._prepared[second]

    def test_recency_order_respected(self, pq, dataset):
        from repro import IVFADCIndex

        wide = IVFADCIndex(pq, n_partitions=4, seed=3).add(dataset.base[:4000])
        scanner = PQFastScanner(pq, keep=0.01, prepared_cache_size=2)
        first, second, third = wide.partitions[:3]
        scanner.prepared(first)
        scanner.prepared(second)
        scanner.prepared(first)  # refresh first; second is now LRU
        scanner.prepared(third)  # over cap: evicts second, not first
        assert scanner.prepared_evictions == 1
        assert first in scanner._prepared
        assert second not in scanner._prepared
        assert third in scanner._prepared

    def test_unbounded_cache(self, pq, index):
        scanner = PQFastScanner(pq, keep=0.01, prepared_cache_size=None)
        for partition in index.partitions:
            scanner.prepared(partition)
        assert scanner.prepared_evictions == 0
        assert len(scanner._prepared) == len(index.partitions)

    def test_evictions_exported_via_observability(self, pq, index):
        with observability_session() as obs:
            scanner = PQFastScanner(pq, keep=0.01, prepared_cache_size=1)
            scanner.prepared(index.partitions[0])
            scanner.prepared(index.partitions[1])
            counter = obs.metrics.get("repro_prepared_cache_evictions_total")
            assert counter.value() == 1.0


class TestShardedProcessBackend:
    def test_process_backend_matches_thread(self, index, dataset):
        sharded = ShardedIndex.from_index(index, n_shards=2)
        thread = ScatterGatherExecutor(
            sharded, NaiveScanner, n_workers=1, backend="thread"
        )
        with ScatterGatherExecutor(
            sharded, NaiveScanner, n_workers=1, backend="process"
        ) as process:
            a = thread.run(dataset.queries, topk=10, nprobe=2)
            b = process.run(dataset.queries, topk=10, nprobe=2)
        assert not a.partial and not b.partial
        _assert_results_equal(a.results, b.results)

    def test_invalid_backend_rejected(self, index):
        sharded = ShardedIndex.from_index(index, n_shards=2)
        with pytest.raises(ConfigurationError, match="backend"):
            ScatterGatherExecutor(sharded, NaiveScanner, backend="mpi")

    def test_close_removes_temp_artifacts(self, index, dataset):
        import pathlib

        sharded = ShardedIndex.from_index(index, n_shards=2)
        executor = ScatterGatherExecutor(
            sharded, NaiveScanner, backend="process"
        )
        tempdir = executor._tempdir
        assert tempdir is not None
        executor.run(dataset.queries, topk=5, nprobe=1)
        executor.close()
        assert not pathlib.Path(tempdir.name).exists()


class TestSanitizerPropagation:
    """REPRO_SANITIZE set in the parent must reach pool workers.

    Worker processes fork before (or with a different) environment, so
    the parent forwards its current gate with every bundle. The tests
    patch the invariant check to raise unconditionally *before* the pool
    forks (workers inherit the patched module), then toggle the gate
    only in the parent — the patched check firing in a worker proves the
    gate crossed the process boundary at run time, not at fork time.
    """

    def _patched_executor(self, index, index_artifact, monkeypatch):
        from repro.core import fast_scan
        from repro.exceptions import InvariantViolation

        def boom(*args, **kwargs):
            raise InvariantViolation("sanitizer ran in worker")

        monkeypatch.delenv("REPRO_SANITIZE", raising=False)
        monkeypatch.setattr(fast_scan, "check_lower_bound_invariant", boom)
        return ProcessBatchExecutor(
            index_artifact,
            PQFastScanner(index.pq, keep=0.01, seed=0),
            n_workers=1,
            index=index,
        )

    def test_sanitize_env_reaches_workers(
        self, index, dataset, index_artifact, monkeypatch
    ):
        from repro.exceptions import InvariantViolation

        with self._patched_executor(index, index_artifact, monkeypatch) as ex:
            # Enabled only after the workers forked: propagation has to
            # happen per bundle for the worker-side check to fire.
            monkeypatch.setenv("REPRO_SANITIZE", "1")
            with pytest.raises(InvariantViolation, match="sanitizer ran"):
                ex.run(dataset.queries, topk=5, nprobe=1)

    def test_sanitize_off_skips_worker_checks(
        self, index, dataset, index_artifact, monkeypatch
    ):
        with self._patched_executor(index, index_artifact, monkeypatch) as ex:
            results = ex.run(dataset.queries, topk=5, nprobe=1)
            assert len(results) == len(dataset.queries)


class TestEngineProcessExecutor:
    def test_config_executor_validated(self):
        with pytest.raises(ConfigurationError, match="executor"):
            EngineConfig(executor="threads-but-fast")

    def test_engine_process_matches_thread(self, index, dataset):
        from dataclasses import replace

        config = EngineConfig(
            m=index.pq.m, n_partitions=index.n_partitions, nprobe=2,
            scanner="naive",
        )
        thread_engine = Engine(index, config)
        with Engine(index, replace(config, executor="process")) as process_engine:
            a = thread_engine.search(dataset.queries, k=10)
            b = process_engine.search(dataset.queries, k=10)
        _assert_results_equal(a, b)
