"""Tests for the SIMD instruction-stream verifier (repro.simd.verify).

Every verifier check gets a seeded-defect test: a clean captured stream
is mutated (or a synthetic stream constructed) so exactly that defect is
present, and the abstract interpreter must report it.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core.grouping import GroupedPartition
from repro.ivf.partition import Partition
from repro.pq.adc import adc_distances
from repro.simd import simdscan_kernel
from repro.simd.arch import get_platform
from repro.simd.verify import (
    KERNEL_NAMES,
    Instruction,
    InstructionStream,
    MemAccess,
    TracingExecutor,
    capture,
    verify_kernel,
    verify_stream,
)

REPO = Path(__file__).resolve().parents[1]


def synthetic(*instructions: Instruction, buffers: dict | None = None) -> InstructionStream:
    return InstructionStream(
        kernel="synthetic",
        platform="haswell",
        instructions=tuple(instructions),
        buffers=buffers or {},
    )


class TestCleanKernels:
    @pytest.mark.parametrize("name", KERNEL_NAMES)
    def test_registered_kernel_verifies_clean(self, name):
        stream, errors = verify_kernel(name)
        assert errors == [], "\n".join(e.format() for e in errors)
        assert len(stream) > 0
        assert stream.kernel == name

    def test_capture_is_deterministic(self):
        assert capture("fastscan") == capture("fastscan")

    def test_unknown_kernel_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            capture("nope")


class TestSeededDefects:
    @pytest.fixture(scope="class")
    def fastscan_stream(self):
        return capture("fastscan")

    def test_paddb_rejected_as_non_saturating(self, fastscan_stream):
        stream = fastscan_stream
        index = next(
            i for i, ins in enumerate(stream.instructions) if ins.method == "paddsb"
        )
        bad = stream.replaced(index, op="paddb", method="paddb")
        errors = verify_stream(bad)
        assert any("saturat" in e.message for e in errors)
        assert any(e.index == index for e in errors)

    def test_pshufb_on_float_source_rejected(self):
        stream = synthetic(
            Instruction("mov", "vzero_f32x8", "acc", ()),
            Instruction("mov", "vset_128", "tbl", ()),
            Instruction("pshufb", "pshufb", "out", ("tbl", "acc")),
        )
        errors = verify_stream(stream)
        assert len(errors) == 1
        assert "pshufb" in errors[0].message and "f32x8" in errors[0].message

    def test_width_mismatch_rejected(self):
        # vaddps on a 16x8-bit register: lane layout mismatch.
        stream = synthetic(
            Instruction("mov", "vset_128", "bytes", ()),
            Instruction("mov", "vzero_f32x8", "acc", ()),
            Instruction("vaddps", "vaddps", "acc", ("acc", "bytes")),
        )
        errors = verify_stream(stream)
        assert len(errors) == 1
        assert "u8x16" in errors[0].message and "f32x8" in errors[0].message

    def test_undefined_register_read_rejected(self):
        stream = synthetic(
            Instruction("paddsb", "paddsb", "lb", ("ghost", "ghost")),
        )
        errors = verify_stream(stream)
        assert errors and all(
            "before any instruction wrote it" in e.message for e in errors
        )

    def test_out_of_bounds_load_rejected(self):
        stream = synthetic(
            Instruction(
                "vload_128", "vload_128", "v", (),
                access=MemAccess("cdb", 56, 16),
            ),
            buffers={"cdb": 64},
        )
        errors = verify_stream(stream)
        assert len(errors) == 1
        assert "out-of-bounds" in errors[0].message

    def test_unregistered_buffer_rejected(self):
        stream = synthetic(
            Instruction(
                "load_f32", "load_f32", "val", (),
                access=MemAccess("ghost", 0, 4),
            ),
        )
        errors = verify_stream(stream)
        assert len(errors) == 1
        assert "unregistered buffer" in errors[0].message

    def test_load_without_recorded_access_rejected(self):
        stream = synthetic(
            Instruction("load_u8", "load_u8", "idx", ()),
        )
        errors = verify_stream(stream)
        assert len(errors) == 1
        assert "no memory access" in errors[0].message

    def test_unknown_method_rejected(self):
        stream = synthetic(
            Instruction("mov_imm", "frobnicate", "x", ()),
        )
        errors = verify_stream(stream)
        assert len(errors) == 1
        assert "unknown instruction method" in errors[0].message

    def test_missing_cost_entry_rejected(self, fastscan_stream):
        crippled = get_platform("haswell")
        del crippled.costs["pshufb"]
        errors = verify_stream(fastscan_stream, platforms=[crippled])
        assert errors
        assert all(e.op == "pshufb" for e in errors)
        assert "no cost-table entry" in errors[0].message

    def test_mutated_bounds_in_real_stream_rejected(self, fastscan_stream):
        stream = fastscan_stream
        index, ins = next(
            (i, ins)
            for i, ins in enumerate(stream.instructions)
            if ins.method == "vload_128" and ins.access is not None
        )
        size = stream.buffers[ins.access.buffer]
        bad = stream.replaced(
            index, access=MemAccess(ins.access.buffer, size - 8, 16)
        )
        errors = verify_stream(bad)
        assert any("out-of-bounds" in e.message for e in errors)

    def test_wrong_width_pshufb_in_quickadc_rejected(self):
        """Seeded defect in the 4-bit kernel: a pshufb whose index
        operand is the u16x8 psrlw result (the nibble shift *before*
        the re-masking pand) must be flagged as a width mismatch."""
        stream = capture("quickadc")
        shift = next(
            i
            for i, ins in enumerate(stream.instructions)
            if ins.method == "psrlw"
        )
        shifted_reg = stream.instructions[shift].dest
        index, ins = next(
            (i, ins)
            for i, ins in enumerate(stream.instructions[shift:], start=shift)
            if ins.method == "pshufb"
        )
        bad = stream.replaced(index, srcs=(ins.srcs[0], shifted_reg))
        errors = verify_stream(bad)
        assert any(e.index == index for e in errors)
        assert any(
            "u16x8" in e.message and "needs u8x16" in e.message
            for e in errors
        )
        # The unmutated capture stays clean.
        assert verify_stream(stream) == []


class TestSimdscanKernel:
    def test_simdscan_minimizes_the_quantized_lower_bound(self):
        from repro.core.minimum_tables import minimum_tables
        from repro.core.quantization import DistanceQuantizer

        rng = np.random.default_rng(7)
        tables = rng.uniform(0.5, 9.5, size=(8, 256)).astype(np.float32)
        codes = rng.integers(0, 256, size=(200, 8), dtype=np.uint8)
        grouped = GroupedPartition(
            Partition(codes, np.arange(len(codes), dtype=np.int64), 0), c=2
        )
        run = simdscan_kernel("haswell", tables, grouped)
        tables64 = np.asarray(tables, dtype=np.float64)
        ref = adc_distances(tables64, grouped.reconstruct_all())
        # Reported distance is the exact ADC distance of the reported row
        # and can never undershoot the true minimum.
        assert run.min_distance >= float(ref.min()) - 1e-9
        assert ref[run.min_position] == pytest.approx(run.min_distance)
        # Host-side reference lower bounds (floor-quantized entries for
        # grouped components, minimum tables for the tail; saturating sum
        # of non-negatives == min(sum, 127)).
        m, c = grouped.m, grouped.c
        qmax = float(tables64.max(axis=1).sum())
        quantizer = DistanceQuantizer.from_tables(tables64, qmax)
        q_t = quantizer.quantize_table(tables64[:c]).astype(np.int64)
        q_min = quantizer.quantize_table(
            minimum_tables(tables64, np.arange(c, m))
        ).astype(np.int64)
        g_codes = grouped.reconstruct_all().astype(np.int64)
        lb = sum(q_t[j, g_codes[:, j]] for j in range(c))
        lb = lb + sum(q_min[t, g_codes[:, c + t] >> 4] for t in range(m - c))
        lb = np.minimum(lb, 127)
        # The kernel's row attains the minimal lower bound, and among
        # those candidates it reports the exact-distance minimum.
        assert lb[run.min_position] == int(lb.min())
        candidates = np.flatnonzero(lb == lb.min())
        assert run.min_distance == pytest.approx(float(ref[candidates].min()))

    def test_simdscan_uses_pminub(self):
        stream = capture("simdscan")
        ops = {ins.op for ins in stream.instructions}
        assert "pminub" in ops
        # No pruning machinery in this kernel.
        assert "pcmpgtb" not in ops and "pmovmskb" not in ops


class TestTracingExecutor:
    def test_trace_does_not_change_results(self):
        from repro.simd import simulate_pq_scan

        tables = np.arange(8 * 256, dtype=np.float32).reshape(8, 256) % 11
        codes = (np.arange(32 * 8, dtype=np.int64) * 17 % 256).astype(
            np.uint8
        ).reshape(32, 8)
        plain = simulate_pq_scan("naive", "haswell", tables, codes)
        traced_ex = TracingExecutor(get_platform("haswell"))
        from repro.simd import naive_kernel

        traced = naive_kernel(traced_ex, tables, codes)
        assert traced.min_distance == plain.min_distance
        assert traced.min_position == plain.min_position
        assert traced.counters.cycles == plain.counters.cycles
        assert len(traced_ex.trace) == plain.counters.instructions

    def test_loads_carry_access_records(self):
        stream = capture("libpq")
        loads = [ins for ins in stream.instructions if ins.method == "load_u64"]
        assert loads and all(
            ins.access is not None and ins.access.nbytes == 8 for ins in loads
        )


class TestCLI:
    def run_cli(self, *args: str) -> subprocess.CompletedProcess:
        env = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin:/usr/local/bin"}
        return subprocess.run(
            [sys.executable, "-m", "repro.simd.verify", *args],
            cwd=REPO,
            capture_output=True,
            text=True,
            env=env,
        )

    def test_all_kernels_exits_zero(self):
        proc = self.run_cli("--all-kernels")
        assert proc.returncode == 0, proc.stderr
        for name in KERNEL_NAMES:
            assert name in proc.stderr

    def test_json_report(self):
        proc = self.run_cli("--kernel", "libpq", "--json")
        assert proc.returncode == 0, proc.stderr
        payload = json.loads(proc.stdout)
        assert payload[0]["kernel"] == "libpq"
        assert payload[0]["errors"] == []
        assert payload[0]["instructions"] > 0

    def test_list_kernels(self):
        proc = self.run_cli("--list")
        assert proc.returncode == 0
        assert set(proc.stdout.split()) == set(KERNEL_NAMES)

    def test_unknown_kernel_exits_two(self):
        proc = self.run_cli("--kernel", "nope")
        assert proc.returncode == 2

    def test_no_kernels_exits_two(self):
        proc = self.run_cli()
        assert proc.returncode == 2
