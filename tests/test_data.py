"""Unit tests for the dataset substrate: generator, IO, ground truth."""

import numpy as np
import pytest

from repro import SyntheticSIFT, VectorDataset, exact_neighbors, recall_at
from repro.data.io import (
    read_bvecs,
    read_fvecs,
    read_ivecs,
    write_bvecs,
    write_fvecs,
    write_ivecs,
)
from repro.exceptions import ConfigurationError, DatasetError


class TestSyntheticSIFT:
    def test_shape_and_range(self):
        gen = SyntheticSIFT(seed=0)
        vecs = gen.generate(100)
        assert vecs.shape == (100, 128)
        assert vecs.min() >= 0.0
        assert vecs.max() <= 255.0

    def test_integral_components(self):
        vecs = SyntheticSIFT(seed=0).generate(50)
        np.testing.assert_array_equal(vecs, np.rint(vecs))

    def test_deterministic(self):
        a = SyntheticSIFT(seed=3).generate(20)
        b = SyntheticSIFT(seed=3).generate(20)
        np.testing.assert_array_equal(a, b)

    def test_splits_are_disjoint_samples(self):
        gen = SyntheticSIFT(seed=0)
        learn = gen.generate(50, split="learn")
        base = gen.generate(50, split="base")
        assert not np.array_equal(learn, base)

    def test_norms_near_target(self):
        vecs = SyntheticSIFT(seed=1, target_norm=512.0).generate(200)
        norms = np.linalg.norm(vecs, axis=1)
        # Clipping and rounding shift norms; the bulk must sit near 512.
        assert 330 < np.median(norms) < 700

    def test_clustered_structure(self):
        """Nearest-neighbor distances are much smaller than random-pair
        distances — the property ANN pruning relies on."""
        vecs = SyntheticSIFT(seed=2).generate(800)
        idx, dists = exact_neighbors(vecs, vecs[:20], k=2)
        nn = dists[:, 1]  # skip self-match
        rng = np.random.default_rng(0)
        pairs = rng.integers(0, 800, size=(200, 2))
        random_d = np.sum((vecs[pairs[:, 0]] - vecs[pairs[:, 1]]) ** 2, axis=1)
        assert np.median(nn) < np.median(random_d) / 2

    def test_rejects_bad_split(self):
        with pytest.raises(ConfigurationError):
            SyntheticSIFT(seed=0).generate(5, split="bogus")

    def test_rejects_negative_n(self):
        with pytest.raises(ConfigurationError):
            SyntheticSIFT(seed=0).generate(-1)


class TestVectorDataset:
    def test_synthetic_constructor(self, dataset):
        assert dataset.dim == 128
        assert "synthetic" in dataset.name
        assert "learn=3000" in dataset.describe()

    def test_rejects_inconsistent_dims(self):
        with pytest.raises(DatasetError):
            VectorDataset(
                "bad",
                learn=np.zeros((5, 4)),
                base=np.zeros((5, 8)),
                queries=np.zeros((2, 4)),
            )


class TestTexmexIO:
    @pytest.mark.parametrize(
        "writer,reader,dtype,values",
        [
            (write_bvecs, read_bvecs, np.uint8, lambda r: r.integers(0, 256, (20, 16))),
            (write_fvecs, read_fvecs, np.float32, lambda r: r.normal(size=(20, 16))),
            (write_ivecs, read_ivecs, np.int32, lambda r: r.integers(-100, 100, (20, 16))),
        ],
    )
    def test_roundtrip(self, tmp_path, writer, reader, dtype, values, rng):
        data = values(rng).astype(dtype)
        path = tmp_path / "vectors.dat"
        writer(path, data)
        loaded = reader(path)
        assert loaded.dtype == dtype
        np.testing.assert_array_equal(loaded, data)

    def test_limit_reads_prefix(self, tmp_path, rng):
        data = rng.integers(0, 256, (30, 8)).astype(np.uint8)
        path = tmp_path / "v.bvecs"
        write_bvecs(path, data)
        loaded = read_bvecs(path, limit=7)
        np.testing.assert_array_equal(loaded, data[:7])

    def test_corrupt_file_rejected(self, tmp_path):
        path = tmp_path / "bad.bvecs"
        path.write_bytes(b"\x08\x00\x00\x00abc")  # truncated record
        with pytest.raises(DatasetError):
            read_bvecs(path)

    def test_bvecs_value_overflow_rejected(self, tmp_path):
        with pytest.raises(DatasetError):
            write_bvecs(tmp_path / "x.bvecs", np.full((2, 4), 300))

    def test_from_texmex_loads_dataset(self, tmp_path, rng):
        base = rng.integers(0, 256, (50, 16)).astype(np.uint8)
        learn = rng.integers(0, 256, (30, 16)).astype(np.uint8)
        queries = rng.integers(0, 256, (5, 16)).astype(np.uint8)
        for name, arr in [("learn", learn), ("base", base), ("query", queries)]:
            write_bvecs(tmp_path / f"{name}.bvecs", arr)
        ds = VectorDataset.from_texmex(
            tmp_path / "learn.bvecs",
            tmp_path / "base.bvecs",
            tmp_path / "query.bvecs",
        )
        assert ds.dim == 16
        np.testing.assert_array_equal(ds.base, base.astype(np.float64))


class TestGroundTruth:
    def test_self_neighbors(self, rng):
        base = rng.normal(size=(100, 8))
        idx, dists = exact_neighbors(base, base[:10], k=1)
        np.testing.assert_array_equal(idx[:, 0], np.arange(10))
        np.testing.assert_allclose(dists[:, 0], 0.0, atol=1e-9)

    def test_sorted_by_distance(self, rng):
        base = rng.normal(size=(200, 4))
        _, dists = exact_neighbors(base, rng.normal(size=(5, 4)), k=10)
        assert (np.diff(dists, axis=1) >= -1e-12).all()

    def test_deterministic_tie_breaking(self):
        base = np.zeros((10, 4))  # every distance ties
        idx, _ = exact_neighbors(base, np.zeros((1, 4)), k=5)
        np.testing.assert_array_equal(idx[0], np.arange(5))

    def test_blocked_matches_unblocked(self, rng):
        base = rng.normal(size=(300, 6))
        queries = rng.normal(size=(20, 6))
        a = exact_neighbors(base, queries, k=7, block=3)
        b = exact_neighbors(base, queries, k=7, block=1000)
        np.testing.assert_array_equal(a[0], b[0])

    def test_k_bounds(self, rng):
        base = rng.normal(size=(10, 3))
        with pytest.raises(ConfigurationError):
            exact_neighbors(base, base[:1], k=11)
        with pytest.raises(ConfigurationError):
            exact_neighbors(base, base[:1], k=0)

    def test_recall_at(self):
        truth = np.array([[1], [2], [3]])
        found = np.array([[1, 9], [9, 2], [9, 9]])
        assert recall_at(found, truth) == pytest.approx(2 / 3)
        assert recall_at(found, truth, r=1) == pytest.approx(1 / 3)
