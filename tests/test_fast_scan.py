"""Integration tests for PQ Fast Scan (the paper's core algorithm)."""

import numpy as np
import pytest

from repro import PQFastScanner, ProductQuantizer, QuantizationOnlyScanner
from repro.exceptions import ConfigurationError, NotFittedError
from repro.scan import LibpqScanner, NaiveScanner


@pytest.fixture(scope="module")
def fast_scanner(pq):
    return PQFastScanner(pq, keep=0.01, seed=0)


class TestExactness:
    @pytest.mark.parametrize("topk", [1, 10, 100])
    def test_same_results_as_pq_scan(self, fast_scanner, index, dataset, topk):
        """Section 5.1: PQ Fast Scan returns exactly PQ Scan's results."""
        naive = NaiveScanner()
        for query in dataset.queries:
            pid = index.route(query)[0]
            tables = index.distance_tables_for(query, pid)
            part = index.partitions[pid]
            ref = naive.scan(tables, part, topk=topk)
            got = fast_scanner.scan(tables, part, topk=topk)
            assert got.same_neighbors(ref)

    def test_exact_across_keep_values(self, pq, index, dataset):
        naive = NaiveScanner()
        query = dataset.queries[1]
        pid = index.route(query)[0]
        tables = index.distance_tables_for(query, pid)
        part = index.partitions[pid]
        ref = naive.scan(tables, part, topk=20)
        for keep in (0.0, 0.001, 0.05, 0.5):
            scanner = PQFastScanner(pq, keep=keep, seed=0)
            assert scanner.scan(tables, part, topk=20).same_neighbors(ref)

    def test_exact_with_arbitrary_assignment(self, pq, index, dataset):
        scanner = PQFastScanner(pq, keep=0.01, assignment="arbitrary")
        query = dataset.queries[2]
        pid = index.route(query)[0]
        tables = index.distance_tables_for(query, pid)
        part = index.partitions[pid]
        ref = LibpqScanner().scan(tables, part, topk=10)
        assert scanner.scan(tables, part, topk=10).same_neighbors(ref)

    @pytest.mark.parametrize("c", [0, 1, 2, 3, 4])
    def test_exact_for_all_group_components(self, pq, index, dataset, c):
        scanner = PQFastScanner(pq, keep=0.01, group_components=c, seed=0)
        query = dataset.queries[3]
        pid = index.route(query)[0]
        tables = index.distance_tables_for(query, pid)
        part = index.partitions[pid]
        ref = NaiveScanner().scan(tables, part, topk=10)
        assert scanner.scan(tables, part, topk=10).same_neighbors(ref)


class TestPruning:
    """Pruning-power behaviour.

    The test workload's partitions (~6-9K vectors) are far below the
    paper's 3.2M minimum for c=4 grouping, so these tests pin c=3 —
    the configuration the benchmark workloads use — where pruning
    behaviour is representative.
    """

    @pytest.fixture(scope="class")
    def tuned_scanner(self, pq):
        return PQFastScanner(pq, keep=0.01, group_components=3, seed=0)

    def test_prunes_majority_of_vectors(self, tuned_scanner, index, dataset):
        fractions = []
        for query in dataset.queries:
            pid = index.route(query)[0]
            tables = index.distance_tables_for(query, pid)
            result = tuned_scanner.scan(tables, index.partitions[pid], topk=1)
            fractions.append(result.pruned_fraction)
            assert (
                result.n_pruned + result.n_exact + result.n_keep
                == result.n_scanned
            )
        assert np.mean(fractions) > 0.6

    def test_lower_topk_prunes_more(self, tuned_scanner, index, dataset):
        """Section 5.4: pruning power decreases with topk (averaged)."""
        deltas = []
        for query in dataset.queries:
            pid = index.route(query)[0]
            tables = index.distance_tables_for(query, pid)
            part = index.partitions[pid]
            p1 = tuned_scanner.scan(tables, part, topk=1).pruned_fraction
            p100 = tuned_scanner.scan(tables, part, topk=100).pruned_fraction
            deltas.append(p1 - p100)
        assert np.mean(deltas) > 0

    def test_optimized_assignment_beats_arbitrary(self, pq, index, dataset):
        """Section 4.3 / the assignment ablation: tighter minima =>
        more pruning (averaged over queries)."""
        opt = PQFastScanner(
            pq, keep=0.01, group_components=3, assignment="optimized", seed=0
        )
        arb = PQFastScanner(
            pq, keep=0.01, group_components=3, assignment="arbitrary", seed=0
        )
        gains = []
        for query in dataset.queries:
            pid = index.route(query)[0]
            tables = index.distance_tables_for(query, pid)
            part = index.partitions[pid]
            po = opt.scan(tables, part, topk=100).pruned_fraction
            pa = arb.scan(tables, part, topk=100).pruned_fraction
            gains.append(po - pa)
        assert np.mean(gains) > 0

    def test_quantization_only_prunes_at_least_as_much(
        self, pq, index, dataset
    ):
        """Figure 17 vs 16: exact 256-entry quantized tables bound
        tighter than 16-entry minimum tables (given comparably fresh
        thresholds)."""
        scanner = PQFastScanner(pq, keep=0.01, group_components=3, seed=0)
        qonly = QuantizationOnlyScanner(pq, keep=0.01, chunk=64)
        diffs = []
        for query in dataset.queries[:4]:
            pid = index.route(query)[0]
            tables = index.distance_tables_for(query, pid)
            part = index.partitions[pid]
            pf = scanner.scan(tables, part, topk=10).pruned_fraction
            pq_only = qonly.scan(tables, part, topk=10).pruned_fraction
            diffs.append(pq_only - pf)
        assert np.mean(diffs) >= 0


class TestQuantizationOnlyScanner:
    def test_exact_results(self, pq, index, dataset):
        qonly = QuantizationOnlyScanner(pq, keep=0.01)
        naive = NaiveScanner()
        for query in dataset.queries[:3]:
            pid = index.route(query)[0]
            tables = index.distance_tables_for(query, pid)
            part = index.partitions[pid]
            assert qonly.scan(tables, part, topk=10).same_neighbors(
                naive.scan(tables, part, topk=10)
            )

    def test_rejects_wide_subquantizers(self, dataset):
        pq16 = ProductQuantizer(m=16, bits=4, max_iter=2, seed=0).fit(dataset.learn)
        with pytest.raises(ConfigurationError):
            QuantizationOnlyScanner(pq16)


class TestConfiguration:
    def test_requires_fitted_pq(self):
        with pytest.raises(NotFittedError):
            PQFastScanner(ProductQuantizer())

    def test_requires_byte_codes(self, dataset):
        pq16 = ProductQuantizer(m=16, bits=4, max_iter=2, seed=0).fit(dataset.learn)
        with pytest.raises(ConfigurationError):
            PQFastScanner(pq16)

    def test_rejects_bad_keep(self, pq):
        with pytest.raises(ConfigurationError):
            PQFastScanner(pq, keep=1.5)

    def test_rejects_unknown_assignment(self, pq):
        with pytest.raises(ConfigurationError):
            PQFastScanner(pq, assignment="magic")

    def test_prepared_cache_reused(self, fast_scanner, partition):
        a = fast_scanner.prepared(partition)
        b = fast_scanner.prepared(partition)
        assert a is b

    def test_prepared_cache_counters(self, pq, partition):
        scanner = PQFastScanner(pq, keep=0.01, seed=0)
        assert (scanner.prepared_hits, scanner.prepared_misses) == (0, 0)
        scanner.prepared(partition)
        assert (scanner.prepared_hits, scanner.prepared_misses) == (0, 1)
        scanner.prepared(partition)
        scanner.prepared(partition)
        assert (scanner.prepared_hits, scanner.prepared_misses) == (2, 1)

    def test_warm_builds_layouts_once(self, pq, index):
        scanner = PQFastScanner(pq, keep=0.01, seed=0)
        built = scanner.warm(index.partitions)
        assert built == len(index.partitions)
        assert scanner.prepared_misses == len(index.partitions)
        # Warming again touches only the cache.
        assert scanner.warm(index.partitions) == 0
        assert scanner.prepared_misses == len(index.partitions)

    def test_prepared_cache_released_on_gc(self, pq, dataset):
        import gc

        from repro import Partition

        scanner = PQFastScanner(pq, keep=0.01, seed=0)
        codes = pq.encode(dataset.base[:600])
        partition = Partition(codes, np.arange(600))
        scanner.prepared(partition)
        assert scanner.prepared_misses == 1
        del partition
        gc.collect()
        # The weakref cache must not keep dead partitions alive: a fresh
        # equivalent partition is a miss, not a stale hit.
        partition2 = Partition(codes, np.arange(600))
        scanner.prepared(partition2)
        assert scanner.prepared_misses == 2

    def test_empty_partition(self, fast_scanner, tables):
        from repro import Partition

        empty = Partition(np.zeros((0, 8), dtype=np.uint8), np.zeros(0))
        result = fast_scanner.scan(tables, empty, topk=5)
        assert result.n_scanned == 0
        assert len(result.ids) == 0

    def test_stats_fields_populated(self, fast_scanner, tables, partition):
        result = fast_scanner.scan(tables, partition, topk=5)
        assert result.qmax >= result.qmin >= 0
        assert result.n_keep >= 5
