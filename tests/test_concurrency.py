"""Concurrency regression suite for the search facade and engine.

The serving layer (:mod:`repro.serve`) is the first component that
drives one :class:`~repro.search.ANNSearcher` / :class:`~repro.Engine`
from many threads and tasks at once. These tests pin the bugs that
traffic exposed:

* ``ANNSearcher.close()`` used to leave ``index_path`` pointing into a
  deleted tempdir, so the next ``executor="process"`` search handed
  workers a dangling artifact path (close → search → close).
* The executor caches used unlocked check-then-set, so racing
  first-searches could leak duplicate pinned pools and ``close()``
  could iterate a dict another thread was inserting into.
* ``ScatterGatherExecutor.run`` returned early on empty batches before
  recording any metrics, silently diverging obs counters from run
  counts.

Cleanness contract under close-while-searching: every concurrent search
either returns byte-identical results or raises an explicit
:class:`ConfigurationError` (never corrupt data). Since 1.5 ``close()``
is *terminal* across the stack — a closed searcher or engine refuses
every later call instead of silently respawning its pools (the shared
lifecycle contract pinned by ``tests/test_lifecycle.py``).
"""

from __future__ import annotations

import threading
import warnings

import numpy as np
import pytest

from repro import Engine, EngineConfig
from repro.exceptions import ConfigurationError
from repro.obs import observability_session
from repro.persistence import save_index
from repro.search import ANNSearcher
from repro.shard import ScatterGatherExecutor, ShardedIndex


def _results_equal(a, b) -> bool:
    """Byte-level equality of two SearchResult lists."""
    if len(a) != len(b):
        return False
    return all(
        ra.ids.tobytes() == rb.ids.tobytes()
        and ra.distances.tobytes() == rb.distances.tobytes()
        and ra.n_scanned == rb.n_scanned
        and ra.n_pruned == rb.n_pruned
        and ra.probed == rb.probed
        for ra, rb in zip(a, b)
    )


@pytest.fixture()
def queries(dataset) -> np.ndarray:
    return dataset.queries


class TestTerminalClose:
    """close() releases everything and refuses every later search."""

    def test_process_close_releases_tempdir_backed_index_path(
        self, index, queries
    ):
        # Regression lineage: on the seed, close() deleted the tempdir
        # but kept index_path pointing into it, handing workers a
        # dangling artifact path. Terminal close keeps the fix — the
        # tempdir is cleaned up exactly once — and refuses reuse.
        searcher = ANNSearcher(index)
        searcher.search(queries, topk=5, nprobe=2, executor="process")
        assert searcher.index_path is not None
        tempdir = searcher._tempdir
        assert tempdir is not None
        searcher.close()
        assert searcher.index_path is None
        assert searcher._tempdir is None
        with pytest.raises(ConfigurationError, match="closed"):
            searcher.search(queries, topk=5, nprobe=2, executor="process")

    def test_close_keeps_user_supplied_index_path(
        self, index, queries, tmp_path
    ):
        path = tmp_path / "index.npz"
        save_index(index, path)
        searcher = ANNSearcher(index, index_path=path)
        searcher.search(queries, topk=5, nprobe=2, executor="process")
        searcher.close()
        assert searcher.index_path == path  # user-owned artifact is kept
        assert path.exists()

    def test_all_executors_identical_then_close_refuses(
        self, index, queries
    ):
        searcher = ANNSearcher(index)
        baseline = searcher.search(
            queries, topk=5, nprobe=2, executor="sequential"
        )
        for executor in ANNSearcher.EXECUTORS:
            got = searcher.search(
                queries, topk=5, nprobe=2, executor=executor
            )
            assert _results_equal(baseline, got), executor
        searcher.close()
        assert searcher._batch_executors == {}
        assert searcher._process_executors == {}
        for executor in ANNSearcher.EXECUTORS:
            with pytest.raises(ConfigurationError, match="closed"):
                searcher.search(
                    queries, topk=5, nprobe=2, executor=executor
                )
        searcher.close()  # idempotent


class TestExecutorCacheRaces:
    """Racing first-searches share exactly one pinned pool per count."""

    def test_batch_executor_race_single_pool(self, index, queries):
        searcher = ANNSearcher(index)
        n_threads = 8
        barrier = threading.Barrier(n_threads)
        baseline = searcher.search(
            queries, topk=5, nprobe=2, executor="sequential"
        )
        outcomes: list[bool] = []
        errors: list[BaseException] = []

        def work() -> None:
            try:
                barrier.wait()
                with warnings.catch_warnings():
                    # The GIL advisory for n_workers>1 may fire in any
                    # racing thread; it is not under test here.
                    warnings.simplefilter("ignore", RuntimeWarning)
                    got = searcher.search(
                        queries,
                        topk=5,
                        nprobe=2,
                        executor="batch",
                        n_workers=2,
                    )
                outcomes.append(_results_equal(baseline, got))
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                errors.append(exc)

        with observability_session() as obs:
            threads = [
                threading.Thread(target=work) for _ in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert all(outcomes) and len(outcomes) == n_threads
            # Exactly one cached executor and one pool spin-up: the
            # unlocked seed version could publish duplicates.
            assert set(searcher._batch_executors) == {2}
            spinups = obs.metrics.get("repro_pool_spinups_total")
            assert spinups.value(backend="thread") == 1.0
        searcher.close()

    def test_process_executor_race_single_pool(self, index, queries):
        searcher = ANNSearcher(index)
        n_threads = 4
        barrier = threading.Barrier(n_threads)
        baseline = searcher.search(
            queries, topk=5, nprobe=2, executor="sequential"
        )
        outcomes: list[bool] = []
        errors: list[BaseException] = []

        def work() -> None:
            try:
                barrier.wait()
                got = searcher.search(
                    queries, topk=5, nprobe=2, executor="process"
                )
                outcomes.append(_results_equal(baseline, got))
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        with observability_session() as obs:
            threads = [
                threading.Thread(target=work) for _ in range(n_threads)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors
            assert all(outcomes) and len(outcomes) == n_threads
            assert set(searcher._process_executors) == {1}
            # Process pools fork eagerly, so the creation lock must keep
            # racing first-searches down to ONE spawned pool.
            spinups = obs.metrics.get("repro_pool_spinups_total")
            assert spinups.value(backend="process") == 1.0
            (executor,) = searcher._process_executors.values()
            pids = executor.worker_pids
            assert len(pids) == executor.pool_size
        searcher.close()

    def test_mixed_executors_hammering_byte_identity(self, index, queries):
        searcher = ANNSearcher(index)
        baseline = searcher.search(
            queries, topk=5, nprobe=2, executor="sequential"
        )
        kinds = ["batch", "process", "sequential", "batch", "process"]
        barrier = threading.Barrier(len(kinds))
        outcomes: list[bool] = []
        errors: list[BaseException] = []

        def work(kind: str) -> None:
            try:
                barrier.wait()
                for _ in range(3):
                    got = searcher.search(
                        queries, topk=5, nprobe=2, executor=kind
                    )
                    outcomes.append(_results_equal(baseline, got))
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=work, args=(kind,)) for kind in kinds
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert all(outcomes) and len(outcomes) == 3 * len(kinds)
        # One pinned executor per (kind, worker-count), despite the race.
        assert set(searcher._batch_executors) == {1}
        assert set(searcher._process_executors) == {1}
        pids_before = searcher._process_executors[1].worker_pids
        searcher.search(queries, topk=5, nprobe=2, executor="process")
        assert searcher._process_executors[1].worker_pids == pids_before
        searcher.close()

    def test_close_under_load_is_clean(self, index, queries):
        searcher = ANNSearcher(index)
        baseline = searcher.search(
            queries, topk=5, nprobe=2, executor="sequential"
        )
        stop = threading.Event()
        outcomes: list[bool] = []
        errors: list[BaseException] = []

        def hammer() -> None:
            try:
                while not stop.is_set():
                    try:
                        got = searcher.search(
                            queries, topk=5, nprobe=2, executor="batch"
                        )
                    except ConfigurationError:
                        # Terminal close landed: every later search
                        # refuses with the lifecycle error.
                        return
                    outcomes.append(_results_equal(baseline, got))
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        # close() racing live searches: every in-flight search either
        # completes byte-identical or raises the explicit lifecycle
        # error — never corrupt results, never a crash.
        for _ in range(10):
            searcher.close()
        stop.set()
        for t in threads:
            t.join()
        assert not errors
        assert all(outcomes)
        assert searcher._batch_executors == {}
        assert searcher._process_executors == {}


class TestEngineConcurrency:
    """Engine.search/search_detailed/close race safety."""

    @pytest.fixture()
    def engine(self, dataset) -> Engine:
        config = EngineConfig(
            n_partitions=4, max_iter=4, coarse_max_iter=4, executor="thread"
        )
        eng = Engine.build(dataset.base[:4000], config)
        yield eng
        eng.close()

    def test_concurrent_search_detailed_single_scatter(
        self, engine, queries
    ):
        n_threads = 6
        barrier = threading.Barrier(n_threads)
        scatters: list[object] = []
        errors: list[BaseException] = []

        def work() -> None:
            try:
                barrier.wait()
                response = engine.search_detailed(queries, k=5, nprobe=2)
                assert not response.partial
                scatters.append(engine._scatter)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=work) for _ in range(n_threads)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        # The unlocked seed version could build one executor per racing
        # thread and leak every loser's pinned pools.
        assert len({id(s) for s in scatters}) == 1

    def test_engine_close_is_terminal(self, engine, queries):
        baseline = engine.search(queries, k=5, nprobe=2)
        detailed = engine.search_detailed(queries, k=5, nprobe=2)
        assert not detailed.partial
        assert _results_equal(baseline, detailed.results)
        engine.close()
        assert engine._scatter is None
        with pytest.raises(ConfigurationError, match="closed"):
            engine.search(queries, k=5, nprobe=2)
        with pytest.raises(ConfigurationError, match="closed"):
            engine.search_detailed(queries, k=5, nprobe=2)
        engine.close()  # idempotent

    def test_engine_close_under_search_detailed_load(self, engine, queries):
        stop = threading.Event()
        errors: list[BaseException] = []
        outcomes: list[bool] = []
        baseline = engine.search(queries, k=5, nprobe=2)

        def hammer() -> None:
            try:
                while not stop.is_set():
                    try:
                        response = engine.search_detailed(
                            queries, k=5, nprobe=2
                        )
                    except (ConfigurationError, RuntimeError):
                        # A pool closed mid-flight surfaces as an
                        # explicit error — clean, never corrupt data.
                        continue
                    if not response.partial:
                        outcomes.append(
                            _results_equal(baseline, response.results)
                        )
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=hammer) for _ in range(3)]
        for t in threads:
            t.start()
        for _ in range(5):
            engine.close()
        stop.set()
        for t in threads:
            t.join()
        # Shard executors report closed pools as degraded shard states
        # (partial=True), never as raw exceptions or corrupt results.
        assert not errors
        assert all(outcomes)


class TestScatterGatherEmptyBatch:
    """Empty batches record the same obs metric families as real ones."""

    def test_empty_batch_records_metrics(self, index, dataset):
        from repro.scan.naive import NaiveScanner

        sharded = ShardedIndex.from_index(index, n_shards=2)
        with observability_session() as obs:
            executor = ScatterGatherExecutor(
                sharded, NaiveScanner, n_workers=1, backend="thread"
            )
            try:
                empty = np.empty(
                    (0, dataset.base.shape[1]), dtype=np.float64
                )
                response = executor.run(empty, topk=5, nprobe=1)
                assert response.results == []
                assert not response.partial
                registry = obs.metrics
                # Regression: the seed's early return skipped all of
                # these, so counters diverged from run counts.
                assert registry.get("repro_gathers_total").value() == 1.0
                assert registry.get("repro_batches_total").value() == 1.0
                assert (
                    registry.get("repro_pool_reuses_total").value(
                        backend="gather"
                    )
                    == 1.0
                )
            finally:
                executor.close()
