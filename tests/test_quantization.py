"""Unit tests for 8-bit distance quantization (Section 4.4)."""

import numpy as np
import pytest

from repro.core.quantization import SATURATION, DistanceQuantizer, saturating_add
from repro.exceptions import ConfigurationError


class TestDistanceQuantizer:
    def test_range_mapping(self):
        q = DistanceQuantizer(qmin=0.0, qmax=127.0)
        codes = q.quantize_table(np.array([0.0, 1.0, 63.5, 126.9, 127.0, 500.0]))
        assert codes[0] == 0
        assert codes[1] == 1
        assert codes[-2] == SATURATION  # at qmax
        assert codes[-1] == SATURATION  # beyond qmax

    def test_table_codes_floor_round(self):
        q = DistanceQuantizer(qmin=0.0, qmax=127.0)
        # 2.999 must round DOWN to 2: entries under-estimate.
        assert q.quantize_table(np.array([2.999]))[0] == 2

    def test_threshold_ceil_rounds(self):
        q = DistanceQuantizer(qmin=0.0, qmax=127.0)
        assert q.quantize_threshold(2.001) == 3

    def test_threshold_saturates_at_qmax(self):
        q = DistanceQuantizer(qmin=0.0, qmax=10.0)
        assert q.quantize_threshold(10.0) == SATURATION
        assert q.quantize_threshold(1e9) == SATURATION

    def test_table_never_exceeds_true_value(self, rng):
        """Decoded floor-codes under-estimate: the lower-bound invariant."""
        q = DistanceQuantizer(qmin=3.0, qmax=250.0)
        values = rng.uniform(3.0, 300.0, size=1000)
        codes = q.quantize_table(values)
        decoded = q.decode(codes)
        below = values < q.qmax
        assert (decoded[below] <= values[below] + 1e-9).all()

    def test_component_compensated_threshold(self, rng):
        """sum(entries) <= value  =>  sum(codes) <= threshold code."""
        q = DistanceQuantizer(qmin=5.0, qmax=400.0)
        for _ in range(200):
            entries = rng.uniform(5.0, 60.0, size=8)
            codes = q.quantize_table(entries)
            total = float(entries.sum())
            threshold = q.quantize_threshold(total, components=8)
            assert min(int(codes.astype(np.int16).sum()), SATURATION) <= threshold

    def test_degenerate_bounds(self):
        q = DistanceQuantizer(qmin=5.0, qmax=5.0)
        assert q.bin_size == 0.0
        codes = q.quantize_table(np.array([4.0, 5.0, 6.0]))
        np.testing.assert_array_equal(codes, [0, SATURATION, SATURATION])
        assert q.quantize_threshold(4.9) == 0

    def test_from_tables_uses_global_min(self, rng):
        tables = rng.uniform(2.0, 9.0, size=(8, 256))
        q = DistanceQuantizer.from_tables(tables, qmax=100.0)
        assert q.qmin == tables.min()

    def test_naive_bounds_are_sum_of_maxima(self, rng):
        tables = rng.uniform(0.0, 10.0, size=(8, 16))
        q = DistanceQuantizer.naive_bounds(tables)
        assert q.qmax == pytest.approx(tables.max(axis=1).sum())

    def test_naive_bounds_have_coarser_bins(self, rng):
        """Figure 12's point: the keep-phase qmax gives finer bins."""
        tables = rng.uniform(0.0, 10.0, size=(8, 256))
        tight = DistanceQuantizer.from_tables(tables, qmax=20.0)
        naive = DistanceQuantizer.naive_bounds(tables)
        assert naive.bin_size > tight.bin_size

    def test_rejects_inverted_bounds(self):
        with pytest.raises(ConfigurationError):
            DistanceQuantizer(qmin=5.0, qmax=1.0)

    def test_rejects_non_finite(self):
        with pytest.raises(ConfigurationError):
            DistanceQuantizer(qmin=0.0, qmax=float("inf"))

    @pytest.mark.parametrize(
        "qmin,qmax",
        [
            (float("nan"), 1.0),
            (0.0, float("nan")),
            (float("-inf"), 1.0),
            (float("nan"), float("nan")),
        ],
    )
    def test_rejects_every_non_finite_bound(self, qmin, qmax):
        with pytest.raises(ConfigurationError, match="finite"):
            DistanceQuantizer(qmin=qmin, qmax=qmax)

    def test_error_message_reports_offending_values(self):
        with pytest.raises(ConfigurationError, match="nan"):
            DistanceQuantizer(qmin=float("nan"), qmax=1.0)


class TestSaturatingAdd:
    def test_saturates_up(self):
        a = np.array([100, 127], dtype=np.int8)
        b = np.array([100, 1], dtype=np.int8)
        np.testing.assert_array_equal(saturating_add(a, b), [127, 127])

    def test_saturates_down(self):
        a = np.array([-100], dtype=np.int8)
        b = np.array([-100], dtype=np.int8)
        np.testing.assert_array_equal(saturating_add(a, b), [-128])

    def test_plain_addition_in_range(self):
        a = np.array([10, -5], dtype=np.int8)
        b = np.array([20, -6], dtype=np.int8)
        np.testing.assert_array_equal(saturating_add(a, b), [30, -11])

    def test_fold_of_nonnegative_equals_clipped_sum(self, rng):
        """For values 0..127, left-fold paddsb == min(sum, 127) — the
        identity the vectorized lower-bound computation relies on."""
        for _ in range(50):
            values = rng.integers(0, 128, size=8).astype(np.int8)
            acc = values[:1].copy()
            for v in values[1:]:
                acc = saturating_add(acc, np.array([v], dtype=np.int8))
            expected = min(int(values.astype(np.int64).sum()), SATURATION)
            assert int(acc[0]) == expected
