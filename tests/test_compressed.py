"""Tests for the Section-6 generalization: compressed-database scans."""

import numpy as np
import pytest

from repro.compressed import (
    ApproximateAggregator,
    DictionaryColumn,
    TopKScoreScanner,
)
from repro.exceptions import ConfigurationError, DatasetError


@pytest.fixture(scope="module")
def columns(rng=np.random.default_rng(77)):
    n = 20000
    return [
        DictionaryColumn.compress("price", rng.lognormal(3.0, 1.0, n)),
        DictionaryColumn.compress("rating", rng.uniform(0, 5, n)),
        DictionaryColumn.compress("clicks", rng.poisson(40, n).astype(float)),
    ]


class TestDictionaryColumn:
    def test_exact_encoding_for_few_distinct_values(self):
        values = np.array([1.0, 3.0, 1.0, 2.0, 3.0] * 10)
        col = DictionaryColumn.compress("c", values)
        np.testing.assert_allclose(col.decode(), values)

    def test_lossy_compression_bounded_error(self, rng):
        values = rng.normal(100, 15, 50000)
        col = DictionaryColumn.compress("c", values)
        err = np.abs(col.decode() - values)
        # 256 quantile bins on a smooth distribution: tiny mean error.
        assert err.mean() < values.std() / 20

    def test_compression_ratio(self, rng):
        values = rng.normal(size=100000)
        col = DictionaryColumn.compress("c", values)
        assert col.nbytes < values.nbytes / 7  # ~8x smaller (8B -> 1B)

    def test_codes_within_dictionary(self, columns):
        for col in columns:
            assert col.codes.max() < len(col.dictionary)

    def test_rejects_2d_values(self):
        with pytest.raises(ConfigurationError):
            DictionaryColumn.compress("c", np.zeros((3, 3)))

    def test_rejects_out_of_dictionary_codes(self):
        with pytest.raises(DatasetError):
            DictionaryColumn("c", np.array([5], dtype=np.uint8), np.zeros(3))


class TestTopKScoreScanner:
    @pytest.mark.parametrize("k", [1, 10, 100])
    def test_fast_equals_exact(self, columns, k):
        scanner = TopKScoreScanner(columns)
        assert scanner.scan_fast(k).same_rows(scanner.scan_exact(k))

    def test_weighted_fast_equals_exact(self, columns):
        scanner = TopKScoreScanner(columns, weights=np.array([2.0, 0.5, 1.0]))
        assert scanner.scan_fast(20).same_rows(scanner.scan_exact(20))

    def test_pruning_is_substantial(self, columns):
        scanner = TopKScoreScanner(columns)
        result = scanner.scan_fast(10)
        assert result.pruned_fraction > 0.5

    def test_smaller_k_prunes_more(self, columns):
        scanner = TopKScoreScanner(columns)
        p1 = scanner.scan_fast(1).pruned_fraction
        p100 = scanner.scan_fast(100).pruned_fraction
        assert p1 >= p100

    def test_scores_sorted_descending(self, columns):
        result = TopKScoreScanner(columns).scan_fast(25)
        assert (np.diff(result.scores) <= 1e-12).all()

    def test_rejects_mismatched_columns(self, columns, rng):
        short = DictionaryColumn.compress("s", rng.normal(size=10))
        with pytest.raises(ConfigurationError):
            TopKScoreScanner([columns[0], short])

    def test_rejects_negative_weights(self, columns):
        with pytest.raises(ConfigurationError):
            TopKScoreScanner(columns, weights=np.array([1.0, -1.0, 1.0]))

    def test_rejects_bad_k(self, columns):
        with pytest.raises(ConfigurationError):
            TopKScoreScanner(columns).scan_fast(0)


class TestApproximateAggregator:
    def test_error_within_reported_bound(self, columns):
        for col in columns:
            agg = ApproximateAggregator(col)
            est = agg.mean()
            assert est.error <= est.max_error + 1e-9

    def test_sum_scales_mean(self, columns):
        agg = ApproximateAggregator(columns[0])
        n = len(columns[0])
        assert agg.sum().value == pytest.approx(agg.mean().value * n, rel=1e-9)

    def test_row_subsets(self, columns):
        agg = ApproximateAggregator(columns[1])
        rows = np.arange(0, 1000)
        est = agg.mean(rows)
        assert est.error <= est.max_error + 1e-9

    def test_mean_is_reasonable(self, columns):
        """The 16-entry estimate lands near the exact compressed mean."""
        agg = ApproximateAggregator(columns[2])
        est = agg.mean()
        assert est.error < abs(est.exact) * 0.25 + 1e-9

    def test_rejects_empty_selection(self, columns):
        agg = ApproximateAggregator(columns[0])
        with pytest.raises(ConfigurationError):
            agg.mean(np.array([], dtype=np.int64))
