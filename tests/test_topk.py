"""Unit tests for top-k candidate management."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.scan.topk import TopKAccumulator, select_topk


class TestTopKAccumulator:
    def test_keeps_k_smallest(self):
        acc = TopKAccumulator(3)
        for d, i in [(5.0, 0), (1.0, 1), (3.0, 2), (0.5, 3), (4.0, 4)]:
            acc.offer(d, i)
        ids, dists = acc.result()
        np.testing.assert_array_equal(ids, [3, 1, 2])
        np.testing.assert_allclose(dists, [0.5, 1.0, 3.0])

    def test_threshold_tracks_worst_kept(self):
        acc = TopKAccumulator(2)
        assert acc.threshold == float("inf")
        acc.offer(5.0, 0)
        assert acc.threshold == float("inf")  # not full yet
        acc.offer(3.0, 1)
        assert acc.threshold == 5.0
        acc.offer(1.0, 2)
        assert acc.threshold == 3.0

    def test_tie_break_prefers_smaller_id(self):
        acc = TopKAccumulator(2)
        acc.offer(1.0, 10)
        acc.offer(1.0, 5)
        acc.offer(1.0, 7)
        ids, _ = acc.result()
        np.testing.assert_array_equal(ids, [5, 7])

    def test_offer_returns_kept_flag(self):
        acc = TopKAccumulator(1)
        assert acc.offer(2.0, 0) is True
        assert acc.offer(3.0, 1) is False
        assert acc.offer(1.0, 2) is True

    def test_offer_many_matches_sequential(self, rng):
        dists = rng.uniform(size=100)
        ids = np.arange(100)
        a = TopKAccumulator(10)
        a.offer_many(dists, ids)
        b = TopKAccumulator(10)
        for d, i in zip(dists, ids):
            b.offer(d, i)
        np.testing.assert_array_equal(a.result()[0], b.result()[0])

    def test_offer_many_bulk_path_with_ties(self, rng):
        """The bulk merge must keep exact (distance, id) tie-breaking."""
        dists = np.repeat(rng.uniform(size=40), 5)  # heavy ties
        ids = rng.permutation(len(dists))
        a = TopKAccumulator(15)
        a.offer_many(dists, ids)
        b = TopKAccumulator(15)
        for d, i in zip(dists, ids):
            b.offer(d, i)
        np.testing.assert_array_equal(a.result()[0], b.result()[0])
        np.testing.assert_array_equal(a.result()[1], b.result()[1])

    def test_offer_many_on_prefilled_heap(self, rng):
        """Bulk merging into a heap that already holds candidates."""
        first = rng.uniform(size=50)
        second = rng.uniform(size=200)
        ids1 = np.arange(50)
        ids2 = np.arange(50, 250)
        a = TopKAccumulator(20)
        a.offer_many(first, ids1)
        a.offer_many(second, ids2)
        b = TopKAccumulator(20)
        for d, i in zip(np.concatenate([first, second]),
                        np.concatenate([ids1, ids2])):
            b.offer(d, i)
        np.testing.assert_array_equal(a.result()[0], b.result()[0])
        np.testing.assert_array_equal(a.result()[1], b.result()[1])
        assert a.threshold == b.threshold

    def test_offer_many_small_batches_use_heap_path(self):
        """Below the bulk threshold the per-offer path is equivalent."""
        a = TopKAccumulator(4)
        b = TopKAccumulator(4)
        for start in range(0, 12, 3):  # batches of 3 < _BULK_MIN
            dists = np.array([1.0, 0.5, 2.0]) + start
            ids = np.arange(start, start + 3)
            a.offer_many(dists, ids)
            for d, i in zip(dists, ids):
                b.offer(d, i)
        np.testing.assert_array_equal(a.result()[0], b.result()[0])

    def test_rejects_bad_k(self):
        with pytest.raises(ConfigurationError):
            TopKAccumulator(0)


class TestSelectTopK:
    def test_matches_accumulator(self, rng):
        dists = rng.uniform(size=500)
        ids = rng.permutation(500)
        ids_a, dists_a = select_topk(dists, ids, 20)
        acc = TopKAccumulator(20)
        acc.offer_many(dists, ids)
        ids_b, dists_b = acc.result()
        np.testing.assert_array_equal(ids_a, ids_b)
        np.testing.assert_allclose(dists_a, dists_b)

    def test_boundary_ties_resolved_by_id(self):
        """Regression: argpartition alone returns arbitrary tie members."""
        dists = np.array([1.0, 2.0, 2.0, 2.0, 2.0, 3.0])
        ids = np.array([50, 40, 30, 20, 10, 0])
        chosen, _ = select_topk(dists, ids, 3)
        np.testing.assert_array_equal(chosen, [50, 10, 20])

    def test_k_larger_than_n(self):
        ids, dists = select_topk(np.array([2.0, 1.0]), np.array([7, 8]), 10)
        np.testing.assert_array_equal(ids, [8, 7])

    def test_many_duplicate_distances(self):
        dists = np.zeros(100)
        ids = np.arange(100)[::-1].copy()
        chosen, _ = select_topk(dists, ids, 5)
        np.testing.assert_array_equal(chosen, [0, 1, 2, 3, 4])

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            select_topk(np.zeros(3), np.zeros(4, dtype=np.int64), 2)
