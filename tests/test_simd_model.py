"""Tests for the simulator's resource models: caches, counters, costs."""

import numpy as np
import pytest

from repro.simd import Executor, get_platform
from repro.simd.cache import NEHALEM_HASWELL_CACHE, CacheModel
from repro.simd.costs import BASE_COSTS, cost_table
from repro.simd.counters import PerfCounters
from repro.exceptions import ConfigurationError, SimulationError


class TestCacheModel:
    def test_level_for_size(self):
        cache = NEHALEM_HASWELL_CACHE()
        assert cache.level_for_size(8 * 1024).name == "L1"
        assert cache.level_for_size(100 * 1024).name == "L2"
        assert cache.level_for_size(1024 * 1024).name == "L3"
        assert cache.level_for_size(1 << 30).name == "DRAM"

    def test_streamed_buffers_stay_l1(self):
        cache = NEHALEM_HASWELL_CACHE()
        assert cache.level_for_size(1 << 30, streamed=True).name == "L1"

    def test_latencies_match_table1(self):
        """Table 1: L1 4-5 cycles, L2 11-13, L3 25-40."""
        cache = NEHALEM_HASWELL_CACHE()
        l1, l2, l3 = cache.levels
        assert 4 <= l1.latency <= 5
        assert 11 <= l2.latency <= 13
        assert 25 <= l3.latency <= 40

    def test_unassigned_buffer_rejected(self):
        cache = NEHALEM_HASWELL_CACHE()
        with pytest.raises(SimulationError):
            cache.load_latency("ghost")

    def test_fill_buffer_limits_miss_throughput(self):
        """Back-to-back L3 loads sustain ~latency/10 cycles apiece —
        without this, fewer-but-slower loads would beat PQ 8x8."""
        def run(level_size):
            ex = Executor(get_platform("haswell"))
            ex.memory.add("buf", np.zeros(level_size, dtype=np.uint8))
            for i in range(200):
                ex.load_u8("r", "buf", i % level_size)
            return ex.counters.cycles

        l1_cycles = run(1024)                 # L1-resident
        l3_cycles = run(1024 * 1024)          # L3-resident
        assert l3_cycles > l1_cycles * 2
        # Sustained, not serialized: far below 200 * 30 cycles.
        assert l3_cycles < 200 * 30


class TestCostTable:
    def test_table2_values_verbatim(self):
        gather = BASE_COSTS["vgather_f32"]
        assert (gather.latency, gather.throughput, gather.uops) == (18, 10, 34)
        pshufb = BASE_COSTS["pshufb"]
        assert (pshufb.latency, pshufb.throughput, pshufb.uops) == (1, 0.5, 1)

    def test_overrides_do_not_mutate_base(self):
        from repro.simd.costs import InstructionCost

        table = cost_table({"pshufb": InstructionCost(9, 9)})
        assert table["pshufb"].latency == 9
        assert BASE_COSTS["pshufb"].latency == 1

    def test_unknown_opcode_rejected(self):
        from repro.exceptions import ConfigurationError

        with pytest.raises(ConfigurationError):
            get_platform("haswell").cost("fsqrt_mystery")


class TestPerfCounters:
    def test_per_vector_normalization(self):
        counters = PerfCounters(
            instructions=300, uops=400, cycles=100.0,
            cycles_with_load=90.0, l1_loads=160,
        )
        pv = counters.per_vector(10)
        assert pv.instructions == 30
        assert pv.uops == 40
        assert pv.cycles == 10
        assert pv.l1_loads == 16
        assert pv.ipc == pytest.approx(3.0)

    def test_per_vector_rejects_zero(self):
        with pytest.raises(ConfigurationError):
            PerfCounters().per_vector(0)

    def test_op_histogram(self):
        counters = PerfCounters()
        counters.count_op("pshufb")
        counters.count_op("pshufb")
        counters.count_op("paddsb")
        assert counters.per_op == {"pshufb": 2, "paddsb": 1}

    def test_as_dict_keys_match_figure3_panels(self):
        pv = PerfCounters(instructions=1, uops=1, cycles=1.0,
                          l1_loads=1).per_vector(1)
        assert set(pv.as_dict()) == {
            "cycles", "cycles w/ load", "instructions", "uops",
            "L1 loads", "IPC",
        }


class TestArchitectureDifferences:
    def test_nehalem_splits_256bit_ops(self):
        hsw = get_platform("haswell").cost("vaddps")
        nhm = get_platform("nehalem").cost("vaddps")
        assert nhm.uops > hsw.uops

    def test_clock_ordering_matches_table5(self):
        clocks = {
            k: get_platform(k).clock_ghz for k in ("A", "B", "C", "D")
        }
        assert clocks["A"] > clocks["B"]  # Haswell laptop vs 2.5 GHz Xeon

    def test_neon_tbl_slower_than_pshufb(self):
        assert (
            get_platform("neon").cost("pshufb").latency
            > get_platform("haswell").cost("pshufb").latency
        )
