"""Property-based tests for the Section-6 compressed-database scans.

The upper-bound top-k must return exactly the exact scan's rows for
*any* column contents, weights and k — mirroring the PQ Fast Scan
exactness property with all inequalities flipped.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.compressed import (
    ApproximateAggregator,
    DictionaryColumn,
    TopKScoreScanner,
)

SLOW = settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

VALUES = hnp.arrays(
    np.float64,
    st.integers(64, 400),
    elements=st.floats(-1e4, 1e4, allow_nan=False, allow_infinity=False),
)


class TestCompressedTopKProperty:
    @given(values=VALUES, seed=st.integers(0, 2**16), k=st.integers(1, 16))
    @SLOW
    def test_fast_scan_exactness(self, values, seed, k):
        rng = np.random.default_rng(seed)
        n = len(values)
        columns = [
            DictionaryColumn.compress("a", values),
            DictionaryColumn.compress("b", rng.normal(0, 50, n)),
        ]
        weights = rng.uniform(0, 3, 2)
        scanner = TopKScoreScanner(columns, weights=weights)
        assert scanner.scan_fast(k, keep=0.05).same_rows(
            scanner.scan_exact(k)
        )

    @given(values=VALUES)
    @SLOW
    def test_compression_roundtrip_monotone(self, values):
        """Dictionary codes preserve value ordering up to bin ties."""
        col = DictionaryColumn.compress("c", values)
        order = np.argsort(values, kind="stable")
        codes_in_value_order = col.codes[order]
        assert (np.diff(codes_in_value_order.astype(int)) >= 0).all()


class TestAggregateProperty:
    @given(values=VALUES)
    @SLOW
    def test_error_always_within_bound(self, values):
        col = DictionaryColumn.compress("c", values)
        est = ApproximateAggregator(col).mean()
        assert est.error <= est.max_error + 1e-6

    @given(values=VALUES, seed=st.integers(0, 2**16))
    @SLOW
    def test_subset_error_within_bound(self, values, seed):
        rng = np.random.default_rng(seed)
        col = DictionaryColumn.compress("c", values)
        rows = rng.integers(0, len(values), size=max(len(values) // 3, 1))
        est = ApproximateAggregator(col).mean(rows)
        assert est.error <= est.max_error + 1e-6
