"""Unit tests for vector grouping and the compact layout (Section 4.2)."""

import numpy as np
import pytest

from repro import Partition
from repro.core.grouping import (
    GroupedPartition,
    group_key_digits,
    min_partition_size,
    suggested_components,
)
from repro.exceptions import ConfigurationError


@pytest.fixture(scope="module")
def codes(rng=np.random.default_rng(7)):
    return rng.integers(0, 256, size=(2000, 8)).astype(np.uint8)


@pytest.fixture(scope="module")
def grouped(codes):
    part = Partition(codes, np.arange(len(codes)))
    return GroupedPartition(part, c=2)


class TestGroupKeys:
    def test_high_nibbles(self):
        codes = np.array([[0x3F, 0xA1, 0x00, 0x10, 0, 0, 0, 0]], dtype=np.uint8)
        digits = group_key_digits(codes, 4)
        np.testing.assert_array_equal(digits[0], [0x3, 0xA, 0x0, 0x1])

    def test_rejects_c_out_of_range(self, codes):
        with pytest.raises(ConfigurationError):
            group_key_digits(codes, 9)


class TestSizingRules:
    def test_min_partition_size(self):
        # Section 4.2: nmin(c) = 50 * 16^c; grouping on 4 components
        # requires >= 3.2M vectors.
        assert min_partition_size(4) == 3_276_800
        assert min_partition_size(3) == 204_800

    def test_suggested_components(self):
        assert suggested_components(10_000_000) == 4
        assert suggested_components(1_000_000) == 3
        assert suggested_components(250_000) == 3
        assert suggested_components(100_000) == 2
        assert suggested_components(100) == 0


class TestGroupedPartition:
    def test_groups_partition_all_rows(self, grouped, codes):
        assert len(grouped) == len(codes)
        covered = sum(len(g) for g in grouped.groups)
        assert covered == len(codes)
        starts = [g.start for g in grouped.groups]
        assert starts == sorted(starts)

    def test_group_members_share_key(self, grouped):
        recon = grouped.reconstruct_all()
        for group in grouped.groups[:50]:
            digits = group_key_digits(recon[group.start : group.stop], grouped.c)
            for j in range(grouped.c):
                assert (digits[:, j] == group.key[j]).all()

    def test_reconstruction_is_lossless(self, codes):
        part = Partition(codes, np.arange(len(codes)))
        for c in (0, 1, 2, 3, 4):
            grouped = GroupedPartition(part, c=c)
            recon = grouped.reconstruct_all()
            # Rows are permuted; match them via ids.
            original_by_id = codes[grouped.ids]
            np.testing.assert_array_equal(recon, original_by_id)

    def test_memory_saving_25_percent_for_c4(self, codes):
        part = Partition(codes, np.arange(len(codes)))
        grouped = GroupedPartition(part, c=4)
        # 6 bytes stored instead of 8 (Section 4.2's 25% claim).
        assert grouped.nbytes == len(codes) * 6
        assert grouped.memory_saving == pytest.approx(0.25)

    def test_memory_saving_odd_c(self, codes):
        part = Partition(codes, np.arange(len(codes)))
        grouped = GroupedPartition(part, c=3)
        # ceil(3/2)=2 packed bytes + 5 tail bytes = 7 bytes/vector.
        assert grouped.nbytes == len(codes) * 7

    def test_low_nibbles_roundtrip(self, grouped):
        recon = grouped.reconstruct_all()
        low = grouped.low_nibbles(0, len(grouped))
        np.testing.assert_array_equal(low, recon[:, : grouped.c] & 0x0F)

    def test_tail_high_nibbles(self, grouped):
        recon = grouped.reconstruct_all()
        high = grouped.tail_high_nibbles(0, len(grouped))
        np.testing.assert_array_equal(high, recon[:, grouped.c :] >> 4)

    def test_c_zero_single_group(self, codes):
        part = Partition(codes, np.arange(len(codes)))
        grouped = GroupedPartition(part, c=0)
        assert len(grouped.groups) == 1
        assert grouped.groups[0].key == ()

    def test_group_stats(self, grouped):
        stats = grouped.group_stats()
        assert stats["n_groups"] == len(grouped.groups)
        assert stats["mean_size"] == pytest.approx(
            len(grouped) / len(grouped.groups)
        )

    def test_empty_partition(self):
        part = Partition(np.zeros((0, 8), dtype=np.uint8), np.zeros(0))
        grouped = GroupedPartition(part, c=4)
        assert len(grouped) == 0
        assert grouped.groups == []
        assert grouped.group_stats()["n_groups"] == 0

    def test_rejects_wide_codes(self):
        part = Partition(np.zeros((4, 8), dtype=np.uint16), np.arange(4))
        with pytest.raises(ConfigurationError):
            GroupedPartition(part, c=4)
