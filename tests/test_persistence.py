"""Tests for model/index persistence."""

import zipfile

import numpy as np
import pytest

from repro import (
    ANNSearcher,
    NaiveScanner,
    PQFastScanner,
    QuantizationOnlyScanner,
    load_index,
    load_quantizer,
    save_index,
    save_quantizer,
)
from repro.exceptions import DatasetError
from repro.obs import observability_session


class TestQuantizerPersistence:
    def test_roundtrip_bit_exact(self, pq, dataset, tmp_path):
        path = tmp_path / "pq.npz"
        save_quantizer(pq, path)
        loaded = load_quantizer(path)
        np.testing.assert_array_equal(loaded.codebooks, pq.codebooks)
        sample = dataset.base[:50]
        np.testing.assert_array_equal(loaded.encode(sample), pq.encode(sample))

    def test_distance_tables_identical(self, pq, query, tmp_path):
        path = tmp_path / "pq.npz"
        save_quantizer(pq, path)
        loaded = load_quantizer(path)
        np.testing.assert_array_equal(
            loaded.distance_tables(query), pq.distance_tables(query)
        )


class TestIndexPersistence:
    def test_roundtrip_answers_identically(self, index, dataset, tmp_path):
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        original = ANNSearcher(index, NaiveScanner())
        restored = ANNSearcher(loaded, NaiveScanner())
        for query in dataset.queries[:3]:
            a = original.search(query, topk=10, nprobe=2)
            b = restored.search(query, topk=10, nprobe=2)
            np.testing.assert_array_equal(a.ids, b.ids)
            np.testing.assert_allclose(a.distances, b.distances)

    def test_partition_contents_preserved(self, index, tmp_path):
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert len(loaded) == len(index)
        for a, b in zip(index.partitions, loaded.partitions):
            np.testing.assert_array_equal(a.codes, b.codes)
            np.testing.assert_array_equal(a.ids, b.ids)

    def test_residual_flag_preserved(self, index, tmp_path):
        path = tmp_path / "index.npz"
        save_index(index, path)
        assert load_index(path).encode_residuals == index.encode_residuals


class TestFormatValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_quantizer(tmp_path / "nope.npz")

    def test_wrong_kind_rejected(self, pq, tmp_path):
        path = tmp_path / "pq.npz"
        save_quantizer(pq, path)
        with pytest.raises(DatasetError):
            load_index(path)

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, data=np.zeros(3))
        with pytest.raises(DatasetError):
            load_quantizer(path)


class TestArchiveHandleHygiene:
    """Regression: ``np.load`` archives must not outlive ``load_*``."""

    @staticmethod
    def _spy_np_load(monkeypatch):
        opened = []
        real_load = np.load

        def spying_load(*args, **kwargs):
            archive = real_load(*args, **kwargs)
            opened.append(archive)
            return archive

        monkeypatch.setattr(np, "load", spying_load)
        return opened

    def test_load_index_closes_archive(self, index, tmp_path, monkeypatch):
        path = tmp_path / "index.npz"
        save_index(index, path)
        opened = self._spy_np_load(monkeypatch)
        load_index(path)
        assert opened, "load_index never called np.load"
        # NpzFile.zip is set to None by close(); a leaked handle keeps it.
        assert all(archive.zip is None for archive in opened)

    def test_load_quantizer_closes_archive(self, pq, tmp_path, monkeypatch):
        path = tmp_path / "pq.npz"
        save_quantizer(pq, path)
        opened = self._spy_np_load(monkeypatch)
        load_quantizer(path)
        assert opened and all(archive.zip is None for archive in opened)

    def test_loaded_arrays_usable_after_close(self, index, tmp_path):
        # Arrays must be materialized, not lazy views into a closed zip.
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        for part in loaded.partitions:
            assert part.codes.sum() >= 0
            assert part.ids.sum() >= 0


class TestAtomicWrites:
    """Regression: a crash mid-save must never clobber the target path."""

    def test_crash_mid_write_preserves_previous(
        self, index, tmp_path, monkeypatch
    ):
        path = tmp_path / "index.npz"
        save_index(index, path)
        good_bytes = path.read_bytes()

        def crashing_savez(handle, **payload):
            handle.write(b"partial garbage")
            raise RuntimeError("simulated crash mid-serialization")

        # Index artifacts are saved uncompressed (stored members are what
        # makes mmap loading possible), so the serializer is np.savez.
        monkeypatch.setattr(np, "savez", crashing_savez)
        with pytest.raises(RuntimeError):
            save_index(index, path)
        assert path.read_bytes() == good_bytes
        loaded = load_index(path)
        assert len(loaded) == len(index)

    def test_crash_leaves_no_temp_files(self, index, tmp_path, monkeypatch):
        path = tmp_path / "index.npz"

        def crashing_savez(handle, **payload):
            raise RuntimeError("simulated crash")

        monkeypatch.setattr(np, "savez", crashing_savez)
        with pytest.raises(RuntimeError):
            save_index(index, path)
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_successful_save_leaves_only_target(self, pq, tmp_path):
        path = tmp_path / "pq.npz"
        save_quantizer(pq, path)
        assert [p.name for p in tmp_path.iterdir()] == ["pq.npz"]

    def test_truncated_archive_raises_dataset_error(self, index, tmp_path):
        path = tmp_path / "index.npz"
        save_index(index, path)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])
        # DatasetError, not a leaked zipfile.BadZipFile.
        with pytest.raises(DatasetError, match="corrupt or truncated"):
            load_index(path)

    def test_garbage_bytes_raise_dataset_error(self, tmp_path):
        path = tmp_path / "index.npz"
        path.write_bytes(b"\x00" * 256)
        with pytest.raises(DatasetError):
            load_index(path)

    def test_zipfile_internals_never_leak(self, index, tmp_path):
        path = tmp_path / "index.npz"
        save_index(index, path)
        blob = path.read_bytes()
        path.write_bytes(blob[:40])
        try:
            load_index(path)
        except zipfile.BadZipFile:  # pragma: no cover - the old bug
            pytest.fail("zipfile.BadZipFile leaked out of load_index")
        except DatasetError:
            pass


def _tamper(path, **overrides):
    """Rewrite the archive with some members replaced (hand-edit sim)."""
    with np.load(path, allow_pickle=False) as archive:
        payload = {name: archive[name] for name in archive.files}
    payload.update(overrides)
    for name in [k for k, v in overrides.items() if v is None]:
        del payload[name]
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **{k: v for k, v in payload.items()})


class TestPartitionValidation:
    """Regression: malformed partition payloads fail at load time."""

    @pytest.fixture()
    def saved(self, index, tmp_path):
        path = tmp_path / "index.npz"
        save_index(index, path)
        return path

    def test_wrong_code_dtype(self, saved):
        with np.load(saved) as archive:
            codes = archive["codes_0"]
        _tamper(saved, codes_0=codes.astype(np.float64))
        with pytest.raises(DatasetError, match="dtype"):
            load_index(saved)

    def test_wrong_code_width(self, saved):
        with np.load(saved) as archive:
            codes = archive["codes_0"]
        _tamper(saved, codes_0=codes[:, :-1])
        with pytest.raises(DatasetError, match="components per code"):
            load_index(saved)

    def test_codes_ids_length_mismatch(self, saved):
        with np.load(saved) as archive:
            ids = archive["ids_0"]
        _tamper(saved, ids_0=ids[:-1])
        with pytest.raises(DatasetError, match="length mismatch"):
            load_index(saved)

    def test_non_integer_ids(self, saved):
        with np.load(saved) as archive:
            ids = archive["ids_0"]
        _tamper(saved, ids_0=ids.astype(np.float32))
        with pytest.raises(DatasetError, match="non-integer"):
            load_index(saved)

    def test_codes_wrong_ndim(self, saved):
        with np.load(saved) as archive:
            codes = archive["codes_0"]
        _tamper(saved, codes_0=codes.ravel())
        with pytest.raises(DatasetError, match="2-D"):
            load_index(saved)

    def test_ids_wrong_ndim(self, saved):
        with np.load(saved) as archive:
            ids = archive["ids_0"]
        _tamper(saved, ids_0=ids[:, None])
        with pytest.raises(DatasetError, match="1-D"):
            load_index(saved)

    def test_missing_partition_field(self, saved):
        _tamper(saved, codes_1=None)
        with pytest.raises(DatasetError, match="missing field"):
            load_index(saved)


class TestRoundTripSearchParity:
    """Reloaded index + each scanner answers byte-identically."""

    @staticmethod
    def _scanner_for(name, idx):
        if name == "naive":
            return NaiveScanner()
        if name == "fastpq":
            return PQFastScanner(idx.pq, keep=0.01, seed=0)
        return QuantizationOnlyScanner(idx.pq, keep=0.01)

    @pytest.mark.parametrize("scanner_name", ["naive", "fastpq", "qonly"])
    def test_search_batch_byte_identical_after_reload(
        self, index, dataset, tmp_path, scanner_name
    ):
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        original = ANNSearcher(index, self._scanner_for(scanner_name, index))
        restored = ANNSearcher(loaded, self._scanner_for(scanner_name, loaded))
        a = original.search(
            dataset.queries, topk=10, nprobe=2, n_workers=2
        )
        b = restored.search(
            dataset.queries, topk=10, nprobe=2, n_workers=2
        )
        assert len(a) == len(b) == len(dataset.queries)
        for ra, rb in zip(a, b):
            assert ra.ids.tobytes() == rb.ids.tobytes()
            assert ra.distances.tobytes() == rb.distances.tobytes()
            assert ra.n_scanned == rb.n_scanned
            assert ra.n_pruned == rb.n_pruned
            assert ra.probed == rb.probed

    def test_observability_counters_survive_reload(
        self, index, dataset, tmp_path
    ):
        path = tmp_path / "index.npz"
        save_index(index, path)
        n = len(dataset.queries)
        with observability_session() as obs:
            ANNSearcher(index, NaiveScanner()).search(
                dataset.queries, topk=10, nprobe=2
            )
            loaded = load_index(path)
            ANNSearcher(loaded, NaiveScanner()).search(
                dataset.queries, topk=10, nprobe=2
            )
        # One metrics session spans the reload: totals keep accumulating.
        assert obs.metrics.get("repro_queries_total").value() == 2 * n
        assert obs.metrics.get("repro_batches_total").value() == 2
        scanned = obs.metrics.get("repro_vectors_scanned_total")
        assert scanned.value(scanner="naive") == 2 * n * len(index)


class TestMmapLoading:
    """load_index(mmap=True): zero-copy partition arrays, same contract."""

    @staticmethod
    def _scanner_for(name, idx):
        if name == "naive":
            return NaiveScanner()
        if name == "fastpq":
            return PQFastScanner(idx.pq, keep=0.01, seed=0)
        return QuantizationOnlyScanner(idx.pq, keep=0.01)

    @pytest.fixture()
    def saved(self, index, tmp_path):
        path = tmp_path / "index.npz"
        save_index(index, path)
        return path

    @pytest.mark.parametrize("scanner_name", ["naive", "fastpq", "qonly"])
    def test_mmap_byte_identical_to_eager(self, index, dataset, saved, scanner_name):
        eager = load_index(saved)
        mapped = load_index(saved, mmap=True)
        a = ANNSearcher(eager, self._scanner_for(scanner_name, eager)).search(
            dataset.queries, topk=10, nprobe=2
        )
        b = ANNSearcher(mapped, self._scanner_for(scanner_name, mapped)).search(
            dataset.queries, topk=10, nprobe=2
        )
        for ra, rb in zip(a, b):
            assert ra.ids.tobytes() == rb.ids.tobytes()
            assert ra.distances.tobytes() == rb.distances.tobytes()
            assert ra.n_scanned == rb.n_scanned
            assert ra.n_pruned == rb.n_pruned

    def test_mmap_arrays_match_eager_bytes(self, saved):
        eager = load_index(saved)
        mapped = load_index(saved, mmap=True)
        for pe, pm in zip(eager.partitions, mapped.partitions):
            np.testing.assert_array_equal(pe.codes, pm.codes)
            np.testing.assert_array_equal(pe.ids, pm.ids)
            assert isinstance(pm.codes.base, np.memmap) or isinstance(
                pm.codes, np.memmap
            )

    def test_mmap_arrays_are_read_only(self, saved):
        mapped = load_index(saved, mmap=True)
        for partition in mapped.partitions:
            assert not partition.codes.flags.writeable
            assert not partition.ids.flags.writeable
            with pytest.raises(ValueError):
                partition.codes[0, 0] = 1

    def test_eager_load_stays_plain_ndarray(self, saved):
        eager = load_index(saved)
        for partition in eager.partitions:
            assert not isinstance(partition.codes, np.memmap)

    def test_mmap_rejects_compressed_artifact(self, index, tmp_path):
        path = tmp_path / "compressed.npz"
        save_index(index, path, compress=True)
        assert load_index(path) is not None  # eager load still fine
        with pytest.raises(DatasetError):
            load_index(path, mmap=True)

    def test_truncated_artifact_raises(self, saved, tmp_path):
        data = saved.read_bytes()
        truncated = tmp_path / "truncated.npz"
        truncated.write_bytes(data[: len(data) // 2])
        with pytest.raises(DatasetError):
            load_index(truncated, mmap=True)

    def test_garbage_bytes_raise(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"not a zip archive at all")
        with pytest.raises(DatasetError):
            load_index(path, mmap=True)

    def test_sharded_mmap_round_trip(self, index, dataset, tmp_path):
        from repro import ShardedIndex, load_sharded_index, save_sharded_index

        sharded = ShardedIndex.from_index(index, n_shards=2)
        directory = tmp_path / "shards.d"
        save_sharded_index(sharded, directory)
        loaded = load_sharded_index(directory, mmap=True)
        for shard in loaded.shards:
            for partition in shard.index.partitions:
                assert not partition.codes.flags.writeable
        a = ANNSearcher(index, NaiveScanner()).search(
            dataset.queries, topk=10, nprobe=2
        )
        from repro import ScatterGatherExecutor

        response = ScatterGatherExecutor(loaded, NaiveScanner).run(
            dataset.queries, topk=10, nprobe=2
        )
        for ra, rb in zip(a, response.results):
            assert ra.ids.tobytes() == rb.ids.tobytes()
            assert ra.distances.tobytes() == rb.distances.tobytes()


class Test4BitSubIndexValidation:
    """Sub-index range validation for bits<8 artifacts at load time.

    An 8-bit code physically cannot exceed its 256-entry tables, but a
    4-bit artifact stores nibbles in full bytes: a corrupt byte >= 16
    would silently read past the 16-entry register tables of the Quick
    ADC path. The loader must reject it, not the scanner."""

    @pytest.fixture()
    def saved4(self, dataset, tmp_path):
        from repro import IVFADCIndex, ProductQuantizer

        pq4 = ProductQuantizer(m=16, bits=4, max_iter=2, seed=5).fit(
            dataset.learn[:800]
        )
        index4 = IVFADCIndex(pq4, n_partitions=2, seed=3).add(
            dataset.base[:2000]
        )
        path = tmp_path / "index4.npz"
        save_index(index4, path)
        return path

    def test_4bit_roundtrip_bit_exact(self, saved4):
        loaded = load_index(saved4)
        assert loaded.pq.bits == 4
        for partition in loaded.partitions:
            assert int(partition.codes.max()) < 16

    def test_4bit_roundtrip_answers_identically(self, saved4, dataset):
        from repro.scan import QuickADCScanner

        loaded = load_index(saved4)
        searcher = ANNSearcher(loaded, QuickADCScanner(loaded.pq))
        result = searcher.search(dataset.queries[0], topk=5, nprobe=2)
        assert len(result.ids) == 5

    def test_out_of_range_sub_index_rejected(self, saved4):
        with np.load(saved4) as archive:
            codes = archive["codes_0"].copy()
        codes[0, 0] = 16  # smallest value that overruns a 16-entry table
        _tamper(saved4, codes_0=codes)
        with pytest.raises(DatasetError, match="out of range"):
            load_index(saved4)

    def test_grossly_corrupt_sub_index_rejected(self, saved4):
        with np.load(saved4) as archive:
            codes = archive["codes_1"].copy()
        codes[-1, -1] = 255
        _tamper(saved4, codes_1=codes)
        with pytest.raises(DatasetError, match="4-bit"):
            load_index(saved4)

    def test_8bit_codes_unaffected(self, index, tmp_path):
        # Full-range 8-bit codes load fine: the check only gates bits<8.
        path = tmp_path / "index8.npz"
        save_index(index, path)
        assert load_index(path) is not None
