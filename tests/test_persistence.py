"""Tests for model/index persistence."""

import numpy as np
import pytest

from repro import (
    ANNSearcher,
    NaiveScanner,
    load_index,
    load_quantizer,
    save_index,
    save_quantizer,
)
from repro.exceptions import DatasetError


class TestQuantizerPersistence:
    def test_roundtrip_bit_exact(self, pq, dataset, tmp_path):
        path = tmp_path / "pq.npz"
        save_quantizer(pq, path)
        loaded = load_quantizer(path)
        np.testing.assert_array_equal(loaded.codebooks, pq.codebooks)
        sample = dataset.base[:50]
        np.testing.assert_array_equal(loaded.encode(sample), pq.encode(sample))

    def test_distance_tables_identical(self, pq, query, tmp_path):
        path = tmp_path / "pq.npz"
        save_quantizer(pq, path)
        loaded = load_quantizer(path)
        np.testing.assert_array_equal(
            loaded.distance_tables(query), pq.distance_tables(query)
        )


class TestIndexPersistence:
    def test_roundtrip_answers_identically(self, index, dataset, tmp_path):
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        original = ANNSearcher(index, NaiveScanner())
        restored = ANNSearcher(loaded, NaiveScanner())
        for query in dataset.queries[:3]:
            a = original.search(query, topk=10, nprobe=2)
            b = restored.search(query, topk=10, nprobe=2)
            np.testing.assert_array_equal(a.ids, b.ids)
            np.testing.assert_allclose(a.distances, b.distances)

    def test_partition_contents_preserved(self, index, tmp_path):
        path = tmp_path / "index.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert len(loaded) == len(index)
        for a, b in zip(index.partitions, loaded.partitions):
            np.testing.assert_array_equal(a.codes, b.codes)
            np.testing.assert_array_equal(a.ids, b.ids)

    def test_residual_flag_preserved(self, index, tmp_path):
        path = tmp_path / "index.npz"
        save_index(index, path)
        assert load_index(path).encode_residuals == index.encode_residuals


class TestFormatValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(DatasetError):
            load_quantizer(tmp_path / "nope.npz")

    def test_wrong_kind_rejected(self, pq, tmp_path):
        path = tmp_path / "pq.npz"
        save_quantizer(pq, path)
        with pytest.raises(DatasetError):
            load_index(path)

    def test_foreign_npz_rejected(self, tmp_path):
        path = tmp_path / "other.npz"
        np.savez(path, data=np.zeros(3))
        with pytest.raises(DatasetError):
            load_quantizer(path)
