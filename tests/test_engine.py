"""repro.Engine facade: config validation, build/search/save/load."""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro import Engine, EngineConfig
from repro.exceptions import ConfigurationError
from repro.shard import ShardedResponse


@pytest.fixture(scope="module")
def small_data(dataset):
    return dataset.base[:2500]


@pytest.fixture(scope="module")
def queries(dataset):
    return dataset.queries[:12]


@pytest.fixture(scope="module")
def flat_engine(small_data):
    return Engine.build(
        small_data, EngineConfig(m=8, bits=8, n_partitions=8, nprobe=3, max_iter=4)
    )


@pytest.fixture(scope="module")
def sharded_engine(small_data):
    return Engine.build(
        small_data,
        EngineConfig(
            m=8, bits=8, n_partitions=8, n_shards=4, nprobe=3, max_iter=4,
            n_workers=2,
        ),
    )


class TestEngineConfig:
    def test_frozen(self):
        config = EngineConfig()
        with pytest.raises(dataclasses.FrozenInstanceError):
            config.nprobe = 5

    def test_defaults_are_valid(self):
        EngineConfig()  # must not raise

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"m": 0},
            {"bits": 0},
            {"bits": 17},
            {"n_partitions": 0},
            {"n_shards": 0},
            {"n_shards": 9, "n_partitions": 8},
            {"shard_layout": "hashed"},
            {"scanner": "simd9000"},
            {"keep": 1.5},
            {"nprobe": 0},
            {"nprobe": 9, "n_partitions": 8},
            {"n_workers": 0},
            {"deadline_s": 0.0},
            {"max_retries": -1},
            {"backoff_s": -1.0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            EngineConfig(**kwargs)

    def test_hashable_and_comparable(self):
        assert EngineConfig() == EngineConfig()
        assert hash(EngineConfig(nprobe=2)) == hash(EngineConfig(nprobe=2))
        assert EngineConfig(nprobe=2) != EngineConfig(nprobe=3)

    def test_invalid_executor_rejected(self):
        with pytest.raises(ConfigurationError, match="executor"):
            EngineConfig(executor="fiber")

    def test_auto_executor_resolution(self):
        # "auto" picks the process backend only where it pays: sharded
        # deployments. Unsharded engines stay on the in-process path.
        assert EngineConfig().resolved_executor == "thread"
        assert (
            EngineConfig(n_shards=4, n_partitions=8).resolved_executor
            == "process"
        )
        assert (
            EngineConfig(executor="thread", n_shards=4, n_partitions=8)
            .resolved_executor
            == "thread"
        )
        assert EngineConfig(executor="process").resolved_executor == "process"


class TestEngineBuildAndSearch:
    def test_len_and_repr(self, flat_engine, small_data):
        assert len(flat_engine) == len(small_data)
        text = repr(flat_engine)
        assert "n_shards=1" in text and "fastpq" in text

    def test_flat_and_sharded_engines_answer_identically(
        self, flat_engine, sharded_engine, queries
    ):
        flat = flat_engine.search(queries, k=10)
        sharded = sharded_engine.search(queries, k=10)
        for a, b in zip(flat, sharded):
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.distances, b.distances)

    def test_single_query_returns_single_result(self, sharded_engine, queries):
        result = sharded_engine.search(queries[0], k=5)
        assert result.ids.shape == (5,)

    def test_nprobe_override(self, flat_engine, queries):
        default = flat_engine.search(queries[0], k=5)
        wide = flat_engine.search(queries[0], k=5, nprobe=8)
        assert len(wide.probed) == 8
        assert len(default.probed) == flat_engine.config.nprobe

    @pytest.mark.parametrize("kind", ["naive", "libpq", "fastpq", "qonly"])
    def test_every_scanner_kind_builds_and_searches(self, small_data, queries, kind):
        engine = Engine.build(
            small_data,
            EngineConfig(n_partitions=4, nprobe=2, scanner=kind, max_iter=2),
        )
        results = engine.search(queries[:4], k=5)
        assert len(results) == 4

    def test_search_detailed_uniform_response(
        self, flat_engine, sharded_engine, queries
    ):
        for engine in (flat_engine, sharded_engine):
            response = engine.search_detailed(queries, k=10)
            assert isinstance(response, ShardedResponse)
            assert not response.partial
            assert len(response.results) == len(queries)

    def test_rerank_requires_kept_vectors_and_unsharded(
        self, small_data, queries, sharded_engine
    ):
        engine = Engine.build(
            small_data,
            EngineConfig(n_partitions=8, nprobe=3, keep_vectors=True, max_iter=4),
        )
        reranked = engine.search(queries, k=5, rerank=50)
        assert len(reranked) == len(queries)
        with pytest.raises(ConfigurationError, match="rerank"):
            sharded_engine.search(queries, k=5, rerank=50)

    def test_custom_ids_surface_in_results(self, small_data, queries):
        ids = np.arange(len(small_data), dtype=np.int64) + 1_000_000
        engine = Engine.build(
            small_data,
            EngineConfig(n_partitions=4, nprobe=2, max_iter=2),
            ids=ids,
        )
        result = engine.search(queries[0], k=5)
        assert (result.ids >= 1_000_000).all()

    def test_constructor_shard_config_mismatch_rejected(self, flat_engine):
        with pytest.raises(ConfigurationError):
            Engine(flat_engine.index, EngineConfig(n_shards=2, n_partitions=8))


class TestEnginePersistence:
    def test_flat_round_trip(self, flat_engine, queries, tmp_path):
        path = tmp_path / "flat.npz"
        flat_engine.save(path)
        loaded = Engine.load(path, EngineConfig(nprobe=3))
        assert loaded.n_shards == 1
        before = flat_engine.search(queries, k=10)
        after = loaded.search(queries, k=10)
        for a, b in zip(before, after):
            assert np.array_equal(a.ids, b.ids)

    def test_sharded_round_trip(self, sharded_engine, queries, tmp_path):
        path = tmp_path / "sharded.d"
        sharded_engine.save(path)
        loaded = Engine.load(path, EngineConfig(nprobe=3, n_workers=2))
        assert loaded.n_shards == 4
        before = sharded_engine.search(queries, k=10)
        after = loaded.search(queries, k=10)
        for a, b in zip(before, after):
            assert np.array_equal(a.ids, b.ids)
            assert np.array_equal(a.distances, b.distances)

    def test_load_reshards_flat_artifact(self, flat_engine, queries, tmp_path):
        path = tmp_path / "flat.npz"
        flat_engine.save(path)
        loaded = Engine.load(path, EngineConfig(nprobe=3, n_shards=2))
        assert loaded.n_shards == 2
        before = flat_engine.search(queries, k=10)
        after = loaded.search(queries, k=10)
        for a, b in zip(before, after):
            assert np.array_equal(a.ids, b.ids)

    def test_load_derives_build_fields_from_artifact(
        self, flat_engine, tmp_path
    ):
        path = tmp_path / "flat.npz"
        flat_engine.save(path)
        # Conflicting build-time fields in the load config are overridden
        # by what the artifact actually contains.
        loaded = Engine.load(path, EngineConfig(m=4, n_partitions=2))
        assert loaded.config.m == 8
        assert loaded.config.n_partitions == 8
