"""Tests for ASCII figure rendering and the report assembler."""

import json

import pytest

from repro.bench.figures import bar_chart, load_result, render_report
from repro.exceptions import ConfigurationError


class TestBarChart:
    def test_scales_to_peak(self):
        chart = bar_chart(["a", "b"], [10.0, 5.0], width=10)
        lines = chart.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_labels_aligned(self):
        chart = bar_chart(["long-label", "x"], [1.0, 2.0])
        lines = chart.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_title_and_unit(self):
        chart = bar_chart(["a"], [3.0], title="T", unit=" ms")
        assert chart.startswith("T\n-")
        assert "3.00 ms" in chart

    def test_zero_values_render(self):
        chart = bar_chart(["a", "b"], [0.0, 0.0])
        assert "0.00" in chart

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ConfigurationError):
            bar_chart(["a"], [1.0, 2.0])

    def test_rejects_empty(self):
        with pytest.raises(ConfigurationError):
            bar_chart([], [])


class TestReportAssembly:
    def test_load_result_roundtrip(self, tmp_path):
        (tmp_path / "exp.json").write_text(json.dumps({"x": 1}))
        assert load_result("exp", tmp_path) == {"x": 1}

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_result("nothing", tmp_path)

    def test_render_report_collects_tables(self, tmp_path):
        (tmp_path / "fig18_topk.json").write_text(
            json.dumps({"1": {"pruned_mean": 0.9}, "10": {"pruned_mean": 0.8}})
        )
        (tmp_path / "fig18_topk.txt").write_text("Figure 18 table\n")
        (tmp_path / "custom_extra.txt").write_text("Extra table\n")
        report = render_report(tmp_path)
        assert "Figure 18 table" in report
        assert "Extra table" in report  # unknown artifacts still included
        assert "pruned distance computations" in report  # the chart

    def test_report_module_main(self, tmp_path, capsys):
        from repro.report import main

        (tmp_path / "a.txt").write_text("AAA\n")
        assert main([str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "AAA" in captured.out
        assert (tmp_path / "REPORT.md").exists()

    def test_report_module_missing_dir(self, tmp_path):
        from repro.report import main

        assert main([str(tmp_path / "ghost")]) == 1
