"""Public-API snapshot tool: records and checks the library's surface.

The repo's compatibility gate. ``tools/public_api.json`` is a committed
snapshot of every public symbol (module ``__all__`` entries) plus the
call signatures of the top-level callables. CI regenerates the snapshot
and fails when it drifts from the committed file — so every API change
is an explicit, reviewed diff of ``public_api.json``, and *removals*
(the breaking kind) are called out separately from additions.

Usage::

    PYTHONPATH=src python -m tools.api_snapshot --write   # regenerate
    PYTHONPATH=src python -m tools.api_snapshot --check   # CI gate
"""

from __future__ import annotations

import argparse
import importlib
import inspect
import json
import sys
from pathlib import Path
from typing import Sequence

#: Modules whose ``__all__`` constitutes the public surface.
PUBLIC_MODULES = (
    "repro",
    "repro.core",
    "repro.data",
    "repro.delta",
    "repro.engine",
    "repro.exceptions",
    "repro.ivf",
    "repro.obs",
    "repro.parallel",
    "repro.persistence",
    "repro.pq",
    "repro.scan",
    "repro.search",
    "repro.serve",
    "repro.shard",
    "repro.simd",
)

SNAPSHOT_PATH = Path(__file__).resolve().parent / "public_api.json"


def _signature_of(obj: object) -> str | None:
    """Best-effort signature string (None for non-callables/builtins)."""
    if not callable(obj):
        return None
    try:
        return str(inspect.signature(obj))
    except (ValueError, TypeError):
        return None


def build_snapshot() -> dict[str, object]:
    """The current public surface: symbols per module, top-level signatures."""
    modules: dict[str, list[str]] = {}
    signatures: dict[str, str] = {}
    for name in PUBLIC_MODULES:
        module = importlib.import_module(name)
        exported = sorted(getattr(module, "__all__", []))
        modules[name] = exported
        for symbol in exported:
            obj = getattr(module, symbol, None)
            sig = _signature_of(obj)
            if sig is not None:
                signatures[f"{name}.{symbol}"] = sig
    return {"modules": modules, "signatures": signatures}


def _flatten(snapshot: dict[str, object]) -> set[str]:
    modules = snapshot.get("modules", {})
    if not isinstance(modules, dict):
        return set()
    return {
        f"{module}.{symbol}"
        for module, symbols in modules.items()
        for symbol in symbols
    }


def check(current: dict[str, object], committed: dict[str, object]) -> list[str]:
    """Human-readable drift report; empty when surfaces match exactly."""
    problems: list[str] = []
    cur, old = _flatten(current), _flatten(committed)
    for symbol in sorted(old - cur):
        problems.append(f"REMOVED (breaking): {symbol}")
    for symbol in sorted(cur - old):
        problems.append(f"added (regenerate snapshot): {symbol}")
    cur_sigs = current.get("signatures", {})
    old_sigs = committed.get("signatures", {})
    if isinstance(cur_sigs, dict) and isinstance(old_sigs, dict):
        for name in sorted(set(old_sigs) & set(cur_sigs)):
            if old_sigs[name] != cur_sigs[name]:
                problems.append(
                    f"signature changed: {name}\n"
                    f"  was: {old_sigs[name]}\n"
                    f"  now: {cur_sigs[name]}"
                )
    return problems


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument("--write", action="store_true",
                      help="regenerate the committed snapshot")
    mode.add_argument("--check", action="store_true",
                      help="fail if the surface drifted from the snapshot")
    parser.add_argument("--snapshot", type=Path, default=SNAPSHOT_PATH)
    args = parser.parse_args(argv)

    current = build_snapshot()
    if args.write:
        args.snapshot.write_text(json.dumps(current, indent=2, sort_keys=True) + "\n")
        n = len(_flatten(current))
        print(f"[{args.snapshot}: {n} public symbols recorded]")
        return 0

    if not args.snapshot.exists():
        print(f"FAIL: no committed snapshot at {args.snapshot}; "
              "run with --write and commit the result")
        return 1
    committed = json.loads(args.snapshot.read_text())
    problems = check(current, committed)
    if problems:
        print("public API drifted from tools/public_api.json:")
        for problem in problems:
            print(f"  {problem}")
        print("If intentional: regenerate with "
              "`PYTHONPATH=src python -m tools.api_snapshot --write`, commit, "
              "and call out any REMOVED lines in the changelog.")
        return 1
    print(f"public API matches snapshot ({len(_flatten(current))} symbols)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
