"""Repository tooling (static analysis, CI helpers). Not shipped with repro."""
