"""Conservative AST dtype inference for NumPy-heavy code.

The checker's rules need to know, for an expression node, which NumPy
dtype the value would carry at runtime. Full type inference is neither
possible nor needed: the rules only fire when the inference is
*confident*, so every unknown construct maps to ``None`` (no opinion)
and can never cause a false positive on exotic code.

Dtypes are plain strings (``"int8"``, ``"uint64"``, ``"float64"``, ...)
plus three special labels:

* ``"pyint"`` / ``"pyfloat"`` — Python scalar literals, which NumPy
  promotes weakly (an int literal never widens an int8 array);
* ``"floatany"`` — some floating dtype (the ``FloatArray`` alias);
* ``"uintany"`` — some unsigned dtype (the ``AnyCodeArray`` alias).

Inference runs once per module (:class:`ModuleInference`): statements
are walked in program order, an environment of ``name -> dtype`` is
threaded through assignments, and every expression visited is memoized
by node identity so rules can ask ``dtype_of(node)`` afterwards.
"""

from __future__ import annotations

import ast

__all__ = ["ModuleInference", "is_8bit", "is_wide", "ALIAS_DTYPES", "DTYPE_NAMES"]

#: Recognized concrete NumPy dtype names (attribute names on ``np.``).
DTYPE_NAMES = {
    "int8": "int8",
    "uint8": "uint8",
    "int16": "int16",
    "uint16": "uint16",
    "int32": "int32",
    "uint32": "uint32",
    "int64": "int64",
    "uint64": "uint64",
    "intp": "int64",
    "float16": "float16",
    "float32": "float32",
    "float64": "float64",
    "bool_": "bool",
    "byte": "int8",
    "ubyte": "uint8",
}

#: NumPy dtype-character / string-literal spellings ("i1", "<u2", ...).
_DTYPE_STRINGS = {
    "i1": "int8",
    "u1": "uint8",
    "i2": "int16",
    "u2": "uint16",
    "i4": "int32",
    "u4": "uint32",
    "i8": "int64",
    "u8": "uint64",
    "f4": "float32",
    "f8": "float64",
}

#: Dtype aliases from ``repro.dtypes`` usable in annotations.
ALIAS_DTYPES = {
    "Int8Array": "int8",
    "UInt8Array": "uint8",
    "Int16Array": "int16",
    "Int32Array": "int32",
    "Int64Array": "int64",
    "UInt64Array": "uint64",
    "Float32Array": "float32",
    "Float64Array": "float64",
    "FloatArray": "floatany",
    "BoolArray": "bool",
    "AnyCodeArray": "uintany",
}

#: Known dtype-producing helpers of this repository and of NumPy,
#: matched on the final attribute / function name of a call.
KNOWN_RETURNS = {
    # repro numerical-safety helpers
    "saturating_add": "int8",
    "quantize_table": "int8",
    "portion_tables": "int8",
    "lower_bounds": "int8",
    "group_key_digits": "uint8",
    "low_nibbles": "uint8",
    "tail_high_nibbles": "uint8",
    "reconstruct_codes": "uint8",
    "reconstruct_all": "uint8",
    "pack_codes_words": "uint64",
    "extract_component": "uint8",
    # numpy index producers
    "flatnonzero": "int64",
    "argsort": "int64",
    "argpartition": "int64",
    "lexsort": "int64",
    "argmin": "int64",
    "argmax": "int64",
}

_WIDTHS = {
    "int8": 8,
    "uint8": 8,
    "int16": 16,
    "uint16": 16,
    "int32": 32,
    "uint32": 32,
    "int64": 64,
    "uint64": 64,
    "float16": 16,
    "float32": 32,
    "float64": 64,
}

_FLOATS = {"float16", "float32", "float64", "floatany", "pyfloat"}


def is_8bit(dtype: str | None) -> bool:
    """True for the two dtypes the saturation discipline covers."""
    return dtype in ("int8", "uint8")


def is_wide(dtype: str | None) -> bool:
    """True when the dtype provably cannot wrap at 8-bit width."""
    if dtype is None:
        return False
    if dtype in _FLOATS:
        return True
    return _WIDTHS.get(dtype, 0) >= 16


def _promote(left: str | None, right: str | None) -> str | None:
    """Approximate NumPy promotion; ``None`` wherever unsure."""
    if left is None or right is None:
        return None
    if left == "pyint":
        return right if right != "pyint" else "pyint"
    if right == "pyint":
        return left
    if left in _FLOATS or right in _FLOATS:
        if left in ("floatany", "pyfloat") or right in ("floatany", "pyfloat"):
            return "float64"
        return max(
            (d for d in (left, right) if d in _FLOATS),
            key=lambda d: _WIDTHS.get(d, 64),
        )
    if left in ("uintany",) or right in ("uintany",):
        return None
    wl, wr = _WIDTHS.get(left), _WIDTHS.get(right)
    if wl is None or wr is None:
        return None
    if left == right:
        return left
    signed_l, signed_r = not left.startswith("u"), not right.startswith("u")
    if signed_l == signed_r:
        return left if wl >= wr else right
    # Mixed signedness: NumPy widens to the next signed type.
    width = max(wl, wr)
    if (signed_l and wl >= wr) or (signed_r and wr >= wl):
        return left if signed_l else right
    return f"int{min(width * 2, 64)}"


def resolve_dtype_node(node: ast.expr) -> str | None:
    """Dtype named by an expression used as a ``dtype=`` argument."""
    if isinstance(node, ast.Attribute) and node.attr in DTYPE_NAMES:
        return DTYPE_NAMES[node.attr]
    if isinstance(node, ast.Name):
        if node.id in DTYPE_NAMES:
            return DTYPE_NAMES[node.id]
        if node.id == "bool":
            return "bool"
        if node.id == "int":
            return "int64"
        if node.id == "float":
            return "float64"
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.lstrip("<>=|")
        if text in _DTYPE_STRINGS:
            return _DTYPE_STRINGS[text]
        if text in DTYPE_NAMES:
            return DTYPE_NAMES[text]
    return None


def annotation_dtype(node: ast.expr | None) -> str | None:
    """Dtype implied by a ``repro.dtypes`` alias annotation."""
    if node is None:
        return None
    if isinstance(node, ast.Name) and node.id in ALIAS_DTYPES:
        return ALIAS_DTYPES[node.id]
    if isinstance(node, ast.Attribute) and node.attr in ALIAS_DTYPES:
        return ALIAS_DTYPES[node.attr]
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        if text in ALIAS_DTYPES:
            return ALIAS_DTYPES[text]
    return None


def _call_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


#: Constructors whose dtype argument position is known:
#: name -> index of the positional ``dtype`` argument (after the first).
_CONSTRUCTOR_DTYPE_POS = {
    "empty": 1,
    "zeros": 1,
    "ones": 1,
    "full": 2,
    "array": 1,
    "asarray": 1,
    "ascontiguousarray": 1,
    "asanyarray": 1,
    "arange": -1,  # keyword only, positional form too rare to model
    "empty_like": 1,
    "zeros_like": 1,
    "ones_like": 1,
    "full_like": 2,
    "fromiter": 1,
}

#: Constructors defaulting to float64 when no dtype is given.
_FLOAT_DEFAULT_CONSTRUCTORS = {"empty", "zeros", "ones"}


class ModuleInference:
    """One-pass, program-order dtype inference over a module."""

    def __init__(self, tree: ast.Module):
        self._types: dict[ast.expr, str | None] = {}
        self._exec_block(tree.body, env={})

    def dtype_of(self, node: ast.expr) -> str | None:
        """Inferred dtype of an expression node, or None if unknown."""
        return self._types.get(node)

    # -- statement walking ---------------------------------------------------

    def _exec_block(self, body: list[ast.stmt], env: dict[str, str | None]) -> None:
        for stmt in body:
            self._exec_stmt(stmt, env)

    def _exec_stmt(self, stmt: ast.stmt, env: dict[str, str | None]) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            inner = dict(env)
            args = stmt.args
            for arg in [
                *args.posonlyargs,
                *args.args,
                *args.kwonlyargs,
                *([args.vararg] if args.vararg else []),
                *([args.kwarg] if args.kwarg else []),
            ]:
                inner[arg.arg] = annotation_dtype(arg.annotation)
            self._exec_block(stmt.body, inner)
            return
        if isinstance(stmt, ast.ClassDef):
            self._exec_block(stmt.body, dict(env))
            return
        if isinstance(stmt, ast.Assign):
            dtype = self._infer(stmt.value, env)
            for target in stmt.targets:
                self._bind_target(target, dtype, env)
            return
        if isinstance(stmt, ast.AnnAssign):
            declared = annotation_dtype(stmt.annotation)
            inferred = self._infer(stmt.value, env) if stmt.value else None
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = declared if declared is not None else inferred
            return
        if isinstance(stmt, ast.AugAssign):
            self._infer(stmt.value, env)
            if isinstance(stmt.target, ast.Name):
                # x += y keeps x's dtype for arrays (in-place cast).
                self._types[stmt.target] = env.get(stmt.target.id)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_dtype = self._infer(stmt.iter, env)
            if isinstance(stmt.target, ast.Name):
                if (
                    isinstance(stmt.iter, ast.Call)
                    and _call_name(stmt.iter) in ("range", "enumerate")
                ):
                    env[stmt.target.id] = "pyint"
                else:
                    # Iterating an array yields elements of the same dtype.
                    env[stmt.target.id] = iter_dtype
            self._exec_block(stmt.body, env)
            self._exec_block(stmt.orelse, env)
            return
        if isinstance(stmt, ast.While):
            self._infer(stmt.test, env)
            self._exec_block(stmt.body, env)
            self._exec_block(stmt.orelse, env)
            return
        if isinstance(stmt, ast.If):
            self._infer(stmt.test, env)
            self._exec_block(stmt.body, env)
            self._exec_block(stmt.orelse, env)
            return
        if isinstance(stmt, ast.With):
            for item in stmt.items:
                self._infer(item.context_expr, env)
            self._exec_block(stmt.body, env)
            return
        if isinstance(stmt, ast.Try):
            self._exec_block(stmt.body, env)
            for handler in stmt.handlers:
                self._exec_block(handler.body, env)
            self._exec_block(stmt.orelse, env)
            self._exec_block(stmt.finalbody, env)
            return
        # Expression statements, returns, raises, asserts: infer all
        # expression children so rules can query them.
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._infer(child, env)

    def _bind_target(
        self, target: ast.expr, dtype: str | None, env: dict[str, str | None]
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = dtype
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._bind_target(element, None, env)
        # Subscript/attribute targets do not rebind names.

    # -- expression inference ------------------------------------------------

    def _infer(self, node: ast.expr, env: dict[str, str | None]) -> str | None:
        dtype = self._infer_inner(node, env)
        self._types[node] = dtype
        return dtype

    def _infer_inner(self, node: ast.expr, env: dict[str, str | None]) -> str | None:
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Constant):
            if isinstance(node.value, bool):
                return "bool"
            if isinstance(node.value, int):
                return "pyint"
            if isinstance(node.value, float):
                return "pyfloat"
            return None
        if isinstance(node, ast.BinOp):
            left = self._infer(node.left, env)
            right = self._infer(node.right, env)
            return _promote(left, right)
        if isinstance(node, ast.UnaryOp):
            return self._infer(node.operand, env)
        if isinstance(node, ast.IfExp):
            self._infer(node.test, env)
            return _promote(self._infer(node.body, env), self._infer(node.orelse, env))
        if isinstance(node, ast.Subscript):
            dtype = self._infer(node.value, env)
            self._infer(node.slice, env)
            # Indexing/slicing a known array preserves its dtype.
            return dtype if dtype not in ("pyint", "pyfloat") else None
        if isinstance(node, ast.Attribute):
            base = self._infer(node.value, env)
            if node.attr == "T":
                return base
            return None
        if isinstance(node, ast.Compare):
            self._infer(node.left, env)
            for comparator in node.comparators:
                self._infer(comparator, env)
            return "bool"
        if isinstance(node, ast.BoolOp):
            for value in node.values:
                self._infer(value, env)
            return None
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            for element in node.elts:
                self._infer(element, env)
            return None
        if isinstance(node, ast.Call):
            return self._infer_call(node, env)
        if isinstance(node, ast.Starred):
            return self._infer(node.value, env)
        if isinstance(node, ast.Slice):
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    self._infer(part, env)
            return None
        # Comprehensions, lambdas, f-strings: visit children, no opinion.
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._infer(child, env)
        return None

    def _infer_call(self, node: ast.Call, env: dict[str, str | None]) -> str | None:
        for arg in node.args:
            self._infer(arg, env)
        for keyword in node.keywords:
            self._infer(keyword.value, env)
        name = _call_name(node)
        if name is None:
            return None
        if name in ("astype", "view") and isinstance(node.func, ast.Attribute):
            self._infer(node.func.value, env)
            if node.args:
                return resolve_dtype_node(node.args[0])
            for keyword in node.keywords:
                if keyword.arg == "dtype":
                    return resolve_dtype_node(keyword.value)
            return None
        if isinstance(node.func, ast.Attribute):
            self._infer(node.func.value, env)
        if name == "copy" and isinstance(node.func, ast.Attribute):
            return self._infer(node.func.value, env)
        if name in _CONSTRUCTOR_DTYPE_POS:
            dtype = self._constructor_dtype(node, name)
            if dtype is not None:
                return dtype
            if name in ("asarray", "ascontiguousarray", "asanyarray", "array"):
                return self._types.get(node.args[0]) if node.args else None
            if name in _FLOAT_DEFAULT_CONSTRUCTORS:
                return "float64"
            return None
        if name in ("clip",):
            return self._types.get(node.args[0]) if node.args else None
        if name in ("minimum", "maximum"):
            if len(node.args) >= 2:
                return _promote(
                    self._types.get(node.args[0]), self._types.get(node.args[1])
                )
            return None
        if name in ("floor", "ceil", "sqrt"):
            return "float64"
        if name in KNOWN_RETURNS:
            return KNOWN_RETURNS[name]
        return None

    def _constructor_dtype(self, node: ast.Call, name: str) -> str | None:
        for keyword in node.keywords:
            if keyword.arg == "dtype":
                return resolve_dtype_node(keyword.value)
        pos = _CONSTRUCTOR_DTYPE_POS[name]
        if 0 < pos + 1 <= len(node.args) and pos >= 1:
            return resolve_dtype_node(node.args[pos])
        return None
