"""reprolint: AST invariant checker for the PQ Fast Scan contracts.

Run as ``python -m tools.reprolint src/``. See
``docs/static_analysis.md`` for the rules, pragma syntax, and the
rationale (floor/ceil/saturate discipline of Sec. 4.4 / Sec. 5).
"""

from .engine import ModuleContext, Pragmas, Violation, check_file, main, run
from .rules import default_rules

__all__ = [
    "ModuleContext",
    "Pragmas",
    "Violation",
    "check_file",
    "default_rules",
    "main",
    "run",
]
