"""The five numerical-safety rules (R1-R5).

The concurrency rules (R6-R9) live in
:mod:`tools.reprolint.concurrency`; :func:`default_rules` returns both
families in id order.

Each rule encodes one contract from the paper's exactness argument
(Sec. 4.4 / Sec. 5: table entries floor-quantize, thresholds
ceil-quantize, int8 sums saturate) or from the repository's engineering
discipline around it. Rules are conservative: they only fire when the
dtype inference is confident, so unknown constructs never alarm.

Scopes (overridable with ``--all-rules``):

========  =====================================================
rule      applies to
========  =====================================================
R1        ``repro/core/``, ``repro/simd/kernels/``
R2, R5b   ``repro/core/``, ``repro/simd/``, ``repro/scan/``
R3        all of ``repro/`` (library code)
R4, R5    ``repro/simd/kernels/``
========  =====================================================
"""

from __future__ import annotations

import ast

from .engine import NARROWING_JUSTIFICATIONS, ModuleContext, Violation
from .inference import ALIAS_DTYPES, is_8bit, is_wide, resolve_dtype_node

__all__ = [
    "Rule",
    "RawInt8AddRule",
    "NarrowingCastRule",
    "BareAssertRule",
    "KernelLoopRule",
    "KernelAnnotationRule",
    "default_rules",
    "SANCTIONED_NARROWING_HELPERS",
]

_CORE = ("/repro/core/",)
_KERNELS = ("/repro/simd/kernels/",)
_TYPED = ("/repro/core/", "/repro/simd/", "/repro/scan/")
_LIBRARY = ("/repro/",)

#: Helpers allowed to narrow to int8/uint8 without a pragma: the
#: quantizers own the floor/ceil discipline, the grouping/layout
#: helpers pack and unpack values that provably fit a nibble or byte.
SANCTIONED_NARROWING_HELPERS = frozenset(
    {
        "quantize_table",
        "quantize_threshold",
        "saturating_add",
        "group_key_digits",
        "low_nibbles",
        "tail_high_nibbles",
        "pack_codes_words",
        "extract_component",
    }
)

#: Kernel functions considered setup code for the loop rule (they
#: rearrange memory once per scan, outside the hot loop).
KERNEL_SETUP_WHITELIST = frozenset(
    {"build_block_layout", "load_tables", "_transposed_words"}
)


class Rule:
    """Base class: path scoping + pragma-disable handling."""

    id = "R0"
    title = "abstract rule"
    scopes: tuple[str, ...] = ()

    def applies(self, path_marker: str) -> bool:
        return any(scope in path_marker for scope in self.scopes)

    def check(self, ctx: ModuleContext) -> list[Violation]:
        raise NotImplementedError

    def _report(
        self, ctx: ModuleContext, node: ast.AST, message: str
    ) -> Violation | None:
        if ctx.pragmas.disabled(node, self.id):
            return None
        return ctx.violation(self.id, node, message)


class RawInt8AddRule(Rule):
    """R1: no raw ``+``/``+=`` on int8/uint8 arrays — use saturating_add.

    A raw NumPy add on 8-bit operands wraps modulo 256; the exactness
    proof requires ``paddsb`` saturation semantics
    (:func:`repro.core.quantization.saturating_add`). An add is flagged
    when at least one operand is a confident int8/uint8 and no operand
    is provably >= 16 bits or floating (which would promote the result
    out of wrap danger).
    """

    id = "R1"
    title = "no raw + / += on int8/uint8 arrays; use saturating_add"
    scopes = _CORE + _KERNELS

    def check(self, ctx: ModuleContext) -> list[Violation]:
        violations: list[Violation] = []
        inference = ctx.inference
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
                left = inference.dtype_of(node.left)
                right = inference.dtype_of(node.right)
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
                left = inference.dtype_of(node.target)
                right = inference.dtype_of(node.value)
            else:
                continue
            if not (is_8bit(left) or is_8bit(right)):
                continue
            if is_wide(left) or is_wide(right):
                continue
            function = ctx.enclosing_function(node)
            if function is not None and function.name == "saturating_add":
                continue
            violation = self._report(
                ctx,
                node,
                "raw add on 8-bit array operands "
                f"({left or '?'} + {right or '?'}) wraps instead of "
                "saturating; use repro.core.quantization.saturating_add "
                "or widen explicitly with .astype(np.int16)",
            )
            if violation:
                violations.append(violation)
        return violations


class NarrowingCastRule(Rule):
    """R2: narrowing ``.astype`` to int8/uint8 needs a sanctioned home.

    Casting to an 8-bit dtype silently truncates: values outside
    [-128, 127] wrap, and the rounding direction of in-range values is
    whatever preceded the cast. The exactness argument requires every
    such cast to be floor (table entries), ceil (thresholds) or
    provably exact — so the cast must either live inside a sanctioned
    helper or carry ``# reprolint: narrowing=<floor|ceil|exact>``.
    """

    id = "R2"
    title = "narrowing .astype to int8/uint8 requires helper or pragma"
    scopes = _TYPED

    def check(self, ctx: ModuleContext) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "astype"
            ):
                continue
            target = None
            if node.args:
                target = resolve_dtype_node(node.args[0])
            for keyword in node.keywords:
                if keyword.arg == "dtype":
                    target = resolve_dtype_node(keyword.value)
            if target not in ("int8", "uint8"):
                continue
            function = ctx.enclosing_function(node)
            if function is not None and function.name in SANCTIONED_NARROWING_HELPERS:
                continue
            justification = ctx.pragmas.get(node, "narrowing")
            if justification in NARROWING_JUSTIFICATIONS:
                continue
            if justification is not None:
                violation = self._report(
                    ctx,
                    node,
                    f"invalid narrowing justification {justification!r}; "
                    f"expected one of {', '.join(NARROWING_JUSTIFICATIONS)}",
                )
            else:
                violation = self._report(
                    ctx,
                    node,
                    f".astype({target}) narrows outside a sanctioned "
                    "quantizer/grouping helper; route through "
                    "DistanceQuantizer.quantize_table/quantize_threshold or "
                    "annotate the rounding direction with "
                    "'# reprolint: narrowing=<floor|ceil|exact>'",
                )
            if violation:
                violations.append(violation)
        return violations


class BareAssertRule(Rule):
    """R3: no bare ``assert`` in library code.

    ``python -O`` strips asserts, so an invariant guarded by one
    silently stops being checked in optimized deployments. Library code
    must raise from :mod:`repro.exceptions` instead; opt-in runtime
    checking belongs to the ``REPRO_SANITIZE`` hook.
    """

    id = "R3"
    title = "no bare assert in library code; raise from repro.exceptions"
    scopes = _LIBRARY

    #: Builtin exceptions that should be repro.exceptions subclasses
    #: when raised by library code.
    _BUILTIN_RAISES = ("ValueError", "TypeError", "RuntimeError", "AssertionError")

    def check(self, ctx: ModuleContext) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Assert):
                violation = self._report(
                    ctx,
                    node,
                    "bare assert is stripped under 'python -O'; raise a "
                    "repro.exceptions error (or gate the check behind "
                    "REPRO_SANITIZE)",
                )
                if violation:
                    violations.append(violation)
            elif isinstance(node, ast.Raise) and node.exc is not None:
                name = None
                if isinstance(node.exc, ast.Call) and isinstance(
                    node.exc.func, ast.Name
                ):
                    name = node.exc.func.id
                elif isinstance(node.exc, ast.Name):
                    name = node.exc.id
                if name in self._BUILTIN_RAISES:
                    violation = self._report(
                        ctx,
                        node,
                        f"library code raises builtin {name}; use the "
                        "repro.exceptions hierarchy so callers can catch "
                        "ReproError",
                    )
                    if violation:
                        violations.append(violation)
        return violations


class KernelLoopRule(Rule):
    """R4: no Python-level per-vector loops in kernel modules.

    Kernel modules either drive the cycle-level executor (every
    iteration issues simulated instructions) or must stay vectorized.
    A ``for`` loop directly over an ndarray, or over
    ``range(len(<ndarray>))``, degrades to per-element Python — flagged
    unless the enclosing function is whitelisted setup code or the loop
    carries ``# reprolint: loop=<reason>``.
    """

    id = "R4"
    title = "no Python for-loops over vectors in kernel modules"
    scopes = _KERNELS

    def check(self, ctx: ModuleContext) -> list[Violation]:
        violations: list[Violation] = []
        inference = ctx.inference
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.For):
                continue
            reason = self._vector_iteration(node.iter, inference)
            if reason is None:
                continue
            function = ctx.enclosing_function(node)
            if function is not None and function.name in KERNEL_SETUP_WHITELIST:
                continue
            if ctx.pragmas.get(node, "loop") is not None:
                continue
            violation = self._report(
                ctx,
                node,
                f"{reason}; vectorize with numpy or issue simulated "
                "instructions, or justify with '# reprolint: loop=<reason>'",
            )
            if violation:
                violations.append(violation)
        return violations

    def _vector_iteration(self, iterator: ast.expr, inference) -> str | None:
        dtype = inference.dtype_of(iterator)
        if dtype is not None and dtype not in ("pyint", "pyfloat", "bool"):
            return f"for-loop iterates a {dtype} array element by element"
        if (
            isinstance(iterator, ast.Call)
            and isinstance(iterator.func, ast.Name)
            and iterator.func.id == "range"
            and len(iterator.args) == 1
        ):
            arg = iterator.args[0]
            if (
                isinstance(arg, ast.Call)
                and isinstance(arg.func, ast.Name)
                and arg.func.id == "len"
                and arg.args
            ):
                inner = inference.dtype_of(arg.args[0])
                if inner is not None and inner not in ("pyint", "pyfloat"):
                    return (
                        f"for-loop over range(len(<{inner} array>)) scans "
                        "elements in Python"
                    )
        return None


class KernelAnnotationRule(Rule):
    """R5: kernel entry points carry dtype annotations that match.

    Every function exported from a kernel module (``__all__``) must be
    fully annotated, array parameters/returns must use the
    dtype-specific aliases of :mod:`repro.dtypes` (never bare
    ``np.ndarray``), and array constructors must state their dtype.
    Wherever an alias annotation meets a constructor with a known
    dtype, the two are cross-referenced.
    """

    id = "R5"
    title = "kernel entry points need dtype annotations matching constructors"
    scopes = _KERNELS

    #: Constructors that must pass an explicit dtype in kernel modules.
    _CONSTRUCTORS = ("empty", "zeros", "ones", "full")

    def check(self, ctx: ModuleContext) -> list[Violation]:
        violations: list[Violation] = []
        exported = set(ctx.module_all())
        for stmt in ctx.tree.body:
            if isinstance(stmt, ast.FunctionDef) and stmt.name in exported:
                violations.extend(self._check_signature(ctx, stmt))
        violations.extend(self._check_constructors(ctx))
        violations.extend(_cross_reference_aliases(self, ctx))
        return violations

    def _check_signature(
        self, ctx: ModuleContext, function: ast.FunctionDef
    ) -> list[Violation]:
        violations: list[Violation] = []
        arguments = [
            *function.args.posonlyargs,
            *function.args.args,
            *function.args.kwonlyargs,
        ]
        for argument in arguments:
            if argument.arg in ("self", "cls"):
                continue
            if argument.annotation is None:
                violation = self._report(
                    ctx,
                    argument,
                    f"kernel entry point {function.name!r}: parameter "
                    f"{argument.arg!r} lacks a type annotation",
                )
                if violation:
                    violations.append(violation)
            elif self._names_bare_ndarray(argument.annotation):
                violation = self._report(
                    ctx,
                    argument,
                    f"kernel entry point {function.name!r}: parameter "
                    f"{argument.arg!r} is annotated with bare np.ndarray; "
                    "use a dtype-specific alias from repro.dtypes "
                    "(Int8Array, UInt8Array, FloatArray, ...)",
                )
                if violation:
                    violations.append(violation)
        if function.returns is None:
            violation = self._report(
                ctx,
                function,
                f"kernel entry point {function.name!r} lacks a return "
                "annotation",
            )
            if violation:
                violations.append(violation)
        elif self._names_bare_ndarray(function.returns):
            violation = self._report(
                ctx,
                function,
                f"kernel entry point {function.name!r} returns bare "
                "np.ndarray; use a dtype-specific alias from repro.dtypes",
            )
            if violation:
                violations.append(violation)
        return violations

    def _names_bare_ndarray(self, annotation: ast.expr) -> bool:
        for node in ast.walk(annotation):
            if isinstance(node, ast.Attribute) and node.attr == "ndarray":
                return True
            if isinstance(node, ast.Name) and node.id == "ndarray":
                return True
            if isinstance(node, ast.Constant) and isinstance(node.value, str):
                if "ndarray" in node.value:
                    return True
        return False

    def _check_constructors(self, ctx: ModuleContext) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in self._CONSTRUCTORS
                and isinstance(node.func.value, ast.Name)
                and node.func.value.id in ("np", "numpy")
            ):
                continue
            has_dtype = any(keyword.arg == "dtype" for keyword in node.keywords)
            minimum_args = 3 if node.func.attr == "full" else 2
            if not has_dtype and len(node.args) < minimum_args:
                violation = self._report(
                    ctx,
                    node,
                    f"np.{node.func.attr}(...) in a kernel module must pass "
                    "an explicit dtype (implicit float64 hides narrowing "
                    "boundaries)",
                )
                if violation:
                    violations.append(violation)
        return violations


def _alias_accepts(declared: str, actual: str) -> bool:
    if declared == actual:
        return True
    if declared == "floatany":
        return actual in ("float16", "float32", "float64", "pyfloat")
    if declared == "uintany":
        return actual.startswith("uint")
    return actual in ("pyint", "pyfloat")


def _cross_reference_aliases(rule: Rule, ctx: ModuleContext) -> list[Violation]:
    """Shared R5 check: alias annotations vs constructed dtypes."""
    violations: list[Violation] = []
    inference = ctx.inference
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.AnnAssign) and node.value is not None:
            declared = _annotation_alias(node.annotation)
            if declared is None:
                continue
            actual = inference.dtype_of(node.value)
            if actual is None or _alias_accepts(declared[1], actual):
                continue
            violation = rule._report(
                ctx,
                node,
                f"annotation {declared[0]} (= {declared[1]}) conflicts with "
                f"constructed dtype {actual}",
            )
            if violation:
                violations.append(violation)
        elif isinstance(node, ast.FunctionDef) and node.returns is not None:
            declared = _annotation_alias(node.returns)
            if declared is None:
                continue
            for child in ast.walk(node):
                if not (isinstance(child, ast.Return) and child.value is not None):
                    continue
                actual = inference.dtype_of(child.value)
                if actual is None or _alias_accepts(declared[1], actual):
                    continue
                violation = rule._report(
                    ctx,
                    child,
                    f"function {node.name!r} declared to return "
                    f"{declared[0]} (= {declared[1]}) but returns a value "
                    f"inferred as {actual}",
                )
                if violation:
                    violations.append(violation)
    return violations


def _annotation_alias(annotation: ast.expr) -> tuple[str, str] | None:
    """(alias name, dtype) named by an annotation, if it is an alias."""
    if isinstance(annotation, ast.Name) and annotation.id in ALIAS_DTYPES:
        return annotation.id, ALIAS_DTYPES[annotation.id]
    if isinstance(annotation, ast.Attribute) and annotation.attr in ALIAS_DTYPES:
        return annotation.attr, ALIAS_DTYPES[annotation.attr]
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        text = annotation.value.strip()
        if text in ALIAS_DTYPES:
            return text, ALIAS_DTYPES[text]
    return None


def default_rules() -> list[Rule]:
    """All rules in id order."""
    from .concurrency import concurrency_rules

    return [
        RawInt8AddRule(),
        NarrowingCastRule(),
        BareAssertRule(),
        KernelLoopRule(),
        KernelAnnotationRule(),
        *concurrency_rules(),
    ]
