"""The four concurrency-safety rules (R6-R9).

PRs 2-5 layered three concurrent execution paths over the numeric core
(thread pool, process pool, sharded scatter-gather). Byte-identical
results across those paths rest on engineering discipline this module
machine-checks:

========  =====================================================
rule      contract
========  =====================================================
R6        mutable attributes of guarded (executor/registry/cache)
          classes are written only in ``__init__``, under a held
          lock, or through a thread-local
R7        no blocking boundary while a lock is held; lock
          acquisition order is acyclic per module
R8        objects submitted to a ``ProcessPoolExecutor`` come
          from the sanctioned picklable set
R9        every ``Future.result()`` passes a timeout (or lives in
          a deadline-managed gather, justified by pragma)
========  =====================================================

All four are conservative: they only fire when the static evidence is
confident, so unknown constructs never alarm. Suppress a deliberate
exception with ``# reprolint: disable=RX`` plus a justification in the
same comment.
"""

from __future__ import annotations

import ast

from .engine import ModuleContext, Violation
from .rules import Rule, _LIBRARY

__all__ = [
    "GuardedStateRule",
    "LockDisciplineRule",
    "ProcessPoolPickleRule",
    "FutureTimeoutRule",
    "GUARDED_CLASSES",
    "SANCTIONED_PICKLABLE",
    "concurrency_rules",
]

#: Classes whose mutable attributes R6 guards even when the class does
#: not (yet) construct a lock of its own. These are the shared-state
#: homes named by the concurrency design notes: the batch executors,
#: the search facade the serving layer drives from many tasks at once,
#: the metrics registry, and the prepared-tables LRU cache owner.
GUARDED_CLASSES = frozenset(
    {
        "ANNSearcher",
        "BatchExecutor",
        "ProcessBatchExecutor",
        "ScatterGatherExecutor",
        "MetricsRegistry",
        "Observability",
        "PQFastScanner",
    }
)

#: Attribute-method calls that mutate the receiver in place. Within a
#: guarded class, ``self.X.<one of these>(...)`` counts as a write to
#: shared state just like ``self.X = ...`` does.
_MUTATOR_METHODS = frozenset(
    {
        "append",
        "extend",
        "insert",
        "remove",
        "discard",
        "clear",
        "update",
        "add",
        "pop",
        "popitem",
        "setdefault",
        "move_to_end",
        "set",
    }
)

#: Callables whose results are sanctioned for crossing a process-pool
#: boundary: the frozen task/spec dataclasses, paths, scalars and the
#: builtin containers of those.
SANCTIONED_PICKLABLE = frozenset(
    {
        "WorkerTask",
        "ScannerSpec",
        "EncodeTask",
        "for_scanner",
        "Path",
        "PurePath",
        "str",
        "bytes",
        "int",
        "float",
        "bool",
        "tuple",
        "list",
        "dict",
        "frozenset",
        "sorted",
        "len",
        "range",
        "min",
        "max",
        "sanitizer_enabled",
    }
)

#: Parameter/attribute annotations sanctioned as picklable payloads.
_SANCTIONED_ANNOTATIONS = frozenset(
    {
        "WorkerTask",
        "ScannerSpec",
        "EncodeTask",
        "Path",
        "str",
        "bytes",
        "int",
        "float",
        "bool",
    }
)

#: Producers whose results must never cross a process-pool boundary:
#: memmaps, open file handles and the heavyweight index/scanner objects
#: the attach-by-path design exists to keep out of pickles.
_BANNED_PRODUCERS = frozenset({"load_index", "open", "memmap"})

#: Annotations marking a value as unpicklable (or expensively so).
_BANNED_ANNOTATIONS = frozenset(
    {
        "PartitionScanner",
        "PQFastScanner",
        "IVFADCIndex",
        "ndarray",
        "memmap",
        "Executor",
        "ThreadPoolExecutor",
        "ProcessPoolExecutor",
    }
)

_LOCK_FACTORIES = frozenset({"Lock", "RLock", "Condition", "Semaphore"})


def _is_lock_expr(node: ast.expr) -> bool:
    """True when a ``with`` context expression looks like a lock."""
    if isinstance(node, ast.Attribute):
        return "lock" in node.attr.lower()
    if isinstance(node, ast.Name):
        return "lock" in node.id.lower()
    return False


def _lock_label(node: ast.expr) -> str:
    """Stable per-module label for a lock expression."""
    try:
        return ast.unparse(node)
    except Exception:  # pragma: no cover - unparse is total on 3.9+
        return ast.dump(node)


def _self_attribute(node: ast.expr) -> str | None:
    """Name ``X`` when ``node`` is exactly ``self.X``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _held_locks(ctx: ModuleContext, node: ast.AST) -> list[str]:
    """Labels of every lock-like ``with`` enclosing ``node``."""
    held: list[str] = []
    current = ctx.parents.get(node)
    while current is not None:
        if isinstance(current, ast.With):
            for item in current.items:
                if _is_lock_expr(item.context_expr):
                    held.append(_lock_label(item.context_expr))
        current = ctx.parents.get(current)
    return held


def _call_name(call: ast.Call) -> str | None:
    """Last path segment of the called expression, if nameable."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_asyncio_call(call: ast.Call) -> bool:
    """True for ``asyncio.X(...)`` — loop-affine, not a thread lock."""
    func = call.func
    return (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id == "asyncio"
    )


class GuardedStateRule(Rule):
    """R6: guarded-class attributes are written only under a lock.

    A class is guarded when it is named in :data:`GUARDED_CLASSES` or
    when any of its methods constructs a ``threading.Lock``/``RLock``
    (owning a lock is declaring shared state). ``asyncio`` primitives
    (``asyncio.Lock``/``Semaphore``/...) do not count: they synchronize
    tasks on one event loop, so owning one declares loop-affine state,
    not cross-thread state. Inside a guarded class,
    every attribute write outside ``__init__`` — plain assignment,
    augmented assignment, subscript stores and in-place mutator calls
    (``append``/``update``/``set``/...) — must sit lexically inside a
    ``with <lock>:`` block or target a ``threading.local()`` attribute.
    """

    id = "R6"
    title = "guarded-class attribute writes need a held lock"
    scopes = _LIBRARY

    def check(self, ctx: ModuleContext) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                violations.extend(self._check_class(ctx, node))
        return violations

    def _check_class(
        self, ctx: ModuleContext, klass: ast.ClassDef
    ) -> list[Violation]:
        lock_attrs, local_attrs = self._special_attrs(klass)
        if klass.name not in GUARDED_CLASSES and not lock_attrs:
            return []
        violations: list[Violation] = []
        for method in klass.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name in ("__init__", "__post_init__", "__del__"):
                continue
            for write, attr in self._attribute_writes(method):
                if attr in lock_attrs or attr in local_attrs:
                    continue
                if _held_locks(ctx, write):
                    continue
                violation = self._report(
                    ctx,
                    write,
                    f"write to shared attribute 'self.{attr}' of guarded "
                    f"class {klass.name!r} outside __init__ without a held "
                    "lock; wrap in 'with self._lock:' (or mark the state "
                    "thread-local) so concurrent callers cannot race",
                )
                if violation:
                    violations.append(violation)
        return violations

    def _special_attrs(
        self, klass: ast.ClassDef
    ) -> tuple[set[str], set[str]]:
        """Attribute names holding locks / thread-locals in this class."""
        locks: set[str] = set()
        locals_: set[str] = set()
        for node in ast.walk(klass):
            if not (isinstance(node, ast.Assign) and isinstance(node.value, ast.Call)):
                continue
            name = _call_name(node.value)
            for target in node.targets:
                attr = _self_attribute(target)
                if attr is None:
                    continue
                if name in _LOCK_FACTORIES and not _is_asyncio_call(node.value):
                    locks.add(attr)
                elif name == "local":
                    locals_.add(attr)
        return locks, locals_

    def _attribute_writes(
        self, method: ast.AST
    ) -> list[tuple[ast.AST, str]]:
        """(node, attribute-name) for every shared-state write."""
        writes: list[tuple[ast.AST, str]] = []
        for node in ast.walk(method):
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _MUTATOR_METHODS
                ):
                    attr = _self_attribute(func.value)
                    if attr is not None:
                        writes.append((node, attr))
                continue
            for target in targets:
                base = target
                while isinstance(base, ast.Subscript):
                    base = base.value
                attr = _self_attribute(base)
                if attr is not None:
                    writes.append((node, attr))
        return writes


#: ``.attr`` names that always denote a blocking boundary.
_ALWAYS_BLOCKING = frozenset({"submit", "sleep", "wait"})

#: ``.attr`` names blocking only on suggestive receivers.
_QUEUEISH = ("queue", "_q", "inbox", "outbox", "channel")
_POOLISH = ("pool", "executor")
_THREADISH = ("thread", "proc", "worker", "pool", "queue")
_FUTUREISH = ("future", "fut")


def _receiver_hint(node: ast.expr) -> str:
    """Lower-cased name of the call receiver, best effort."""
    if isinstance(node, ast.Attribute):
        return node.attr.lower()
    if isinstance(node, ast.Name):
        return node.id.lower()
    return ""


class LockDisciplineRule(Rule):
    """R7: locks are not held across blocking calls; order is acyclic.

    Part one flags calls that can block indefinitely while a lexically
    enclosing ``with <lock>:`` is held: ``submit``, ``sleep``, ``wait``
    always; ``result``/``get``/``put``/``join``/``map``/``shutdown``
    when the receiver's name marks it as a future, queue, thread or
    pool. Part two builds the module's static lock-order graph from
    nested (and multi-item) ``with`` blocks and reports any cycle —
    two call paths acquiring the same pair of locks in opposite order
    is the textbook ABBA deadlock.
    """

    id = "R7"
    title = "no blocking call under a held lock; acyclic lock order"
    scopes = _LIBRARY

    def check(self, ctx: ModuleContext) -> list[Violation]:
        violations = self._check_blocking(ctx)
        violations.extend(self._check_order(ctx))
        return violations

    def _check_blocking(self, ctx: ModuleContext) -> list[Violation]:
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            reason = self._blocking_reason(node)
            if reason is None:
                continue
            held = _held_locks(ctx, node)
            if not held:
                continue
            violation = self._report(
                ctx,
                node,
                f"{reason} while holding {held[0]}; release the lock "
                "before crossing a blocking boundary (swap shared refs "
                "under the lock, block outside it)",
            )
            if violation:
                violations.append(violation)
        return violations

    def _blocking_reason(self, call: ast.Call) -> str | None:
        func = call.func
        if isinstance(func, ast.Name):
            if func.id == "sleep":
                return "sleep()"
            return None
        if not isinstance(func, ast.Attribute):
            return None
        attr = func.attr
        hint = _receiver_hint(func.value)
        if attr in _ALWAYS_BLOCKING:
            return f".{attr}() blocks"
        if attr == "result" and any(mark in hint for mark in _FUTUREISH):
            return ".result() blocks on a future"
        if attr in ("get", "put") and any(mark in hint for mark in _QUEUEISH):
            return f"queue .{attr}() blocks"
        if attr in ("map", "shutdown") and any(
            mark in hint for mark in _POOLISH
        ):
            return f"pool .{attr}() blocks"
        if attr == "join" and any(mark in hint for mark in _THREADISH):
            return ".join() blocks"
        return None

    def _check_order(self, ctx: ModuleContext) -> list[Violation]:
        edges: dict[str, set[str]] = {}
        witnesses: dict[tuple[str, str], ast.AST] = {}
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.With):
                continue
            outer_here = [
                _lock_label(item.context_expr)
                for item in node.items
                if _is_lock_expr(item.context_expr)
            ]
            if not outer_here:
                continue
            # Multi-item 'with a, b:' acquires left to right.
            for first, second in zip(outer_here, outer_here[1:]):
                edges.setdefault(first, set()).add(second)
                witnesses.setdefault((first, second), node)
            held = _held_locks(ctx, node)
            for inner in outer_here:
                for outer in held:
                    if outer == inner:
                        continue
                    edges.setdefault(outer, set()).add(inner)
                    witnesses.setdefault((outer, inner), node)
        cycle = self._find_cycle(edges)
        if cycle is None:
            return []
        node = witnesses.get((cycle[0], cycle[1]))
        if node is None:  # pragma: no cover - witness always recorded
            return []
        violation = self._report(
            ctx,
            node,
            "inconsistent lock acquisition order in this module: "
            + " -> ".join(cycle)
            + " forms a cycle; pick one global order and take locks in "
            "that order everywhere",
        )
        return [violation] if violation else []

    def _find_cycle(
        self, edges: dict[str, set[str]]
    ) -> list[str] | None:
        WHITE, GREY, BLACK = 0, 1, 2
        color: dict[str, int] = {}
        stack: list[str] = []

        def visit(vertex: str) -> list[str] | None:
            color[vertex] = GREY
            stack.append(vertex)
            for succ in sorted(edges.get(vertex, ())):
                state = color.get(succ, WHITE)
                if state == GREY:
                    start = stack.index(succ)
                    return stack[start:] + [succ]
                if state == WHITE:
                    found = visit(succ)
                    if found:
                        return found
            stack.pop()
            color[vertex] = BLACK
            return None

        for vertex in sorted(edges):
            if color.get(vertex, WHITE) == WHITE:
                found = visit(vertex)
                if found:
                    return found
        return None


class ProcessPoolPickleRule(Rule):
    """R8: process-pool payloads come from the sanctioned picklable set.

    Everything submitted to a ``ProcessPoolExecutor`` is pickled into
    the worker. The sanctioned payloads are the frozen ``ScannerSpec``
    / ``WorkerTask`` dataclasses, paths, scalars and containers of
    those; memmaps, open indexes and scanners must travel by path and
    be re-opened worker-side (the attach-by-path design). The rule
    tracks which names hold process pools (constructor assignments,
    ``with`` targets, and calls to helpers annotated ``->
    ProcessPoolExecutor``) and classifies every ``submit`` argument;
    only confidently-unpicklable arguments fire. The submitted callable
    itself must be a module-level function, never a lambda, closure or
    bound method.
    """

    id = "R8"
    title = "ProcessPoolExecutor payloads must be sanctioned picklables"
    scopes = _LIBRARY

    def check(self, ctx: ModuleContext) -> list[Violation]:
        pools = self._pool_names(ctx)
        if not pools:
            return []
        module_level = self._module_level_callables(ctx)
        violations: list[Violation] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "submit":
                if not self._is_pool(func.value, pools):
                    continue
                violations.extend(
                    self._check_submit(ctx, node, module_level)
                )
            elif _call_name(node) == "ProcessPoolExecutor":
                violations.extend(self._check_initargs(ctx, node))
        return violations

    def _pool_names(self, ctx: ModuleContext) -> tuple[set[str], set[str]]:
        """(plain names, self attributes) statically holding pools."""
        makers = {"ProcessPoolExecutor"}
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                returns = node.returns
                if returns is not None and "ProcessPoolExecutor" in ast.dump(
                    returns
                ):
                    makers.add(node.name)
        names: set[str] = set()
        attrs: set[str] = set()

        def record(target: ast.expr) -> None:
            attr = _self_attribute(target)
            if attr is not None:
                attrs.add(attr)
            elif isinstance(target, ast.Name):
                names.add(target.id)

        for node in ast.walk(ctx.tree):
            value: ast.expr | None = None
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, list(node.targets)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            elif isinstance(node, ast.AnnAssign):
                if "ProcessPoolExecutor" in ast.dump(node.annotation):
                    record(node.target)
                continue
            elif isinstance(node, ast.With):
                for item in node.items:
                    expr = item.context_expr
                    if (
                        isinstance(expr, ast.Call)
                        and _call_name(expr) in makers
                        and item.optional_vars is not None
                    ):
                        record(item.optional_vars)
                continue
            else:
                continue
            if isinstance(value, ast.Call) and _call_name(value) in makers:
                for target in targets:
                    record(target)
        if not names and not attrs:
            return set(), set()
        return names, attrs

    def _is_pool(
        self, receiver: ast.expr, pools: tuple[set[str], set[str]]
    ) -> bool:
        names, attrs = pools
        if isinstance(receiver, ast.Name):
            return receiver.id in names
        attr = _self_attribute(receiver)
        return attr is not None and attr in attrs

    def _module_level_callables(self, ctx: ModuleContext) -> set[str]:
        names: set[str] = set()
        for stmt in ctx.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                names.add(stmt.name)
            elif isinstance(stmt, ast.ImportFrom):
                names.update(alias.asname or alias.name for alias in stmt.names)
            elif isinstance(stmt, ast.Import):
                names.update(
                    (alias.asname or alias.name).split(".")[0]
                    for alias in stmt.names
                )
        return names

    def _check_submit(
        self, ctx: ModuleContext, call: ast.Call, module_level: set[str]
    ) -> list[Violation]:
        violations: list[Violation] = []
        if call.args:
            target = call.args[0]
            problem: str | None = None
            if isinstance(target, ast.Lambda):
                problem = "a lambda (captures its closure, unpicklable)"
            elif isinstance(target, ast.Attribute):
                problem = (
                    "a bound method or attribute (pickles the whole receiver)"
                )
            elif (
                isinstance(target, ast.Name)
                and target.id not in module_level
            ):
                problem = (
                    f"{target.id!r}, which is not a module-level function "
                    "(nested defs capture their closure)"
                )
            if problem is not None:
                violation = self._report(
                    ctx,
                    target,
                    f"process-pool submit target is {problem}; submit a "
                    "module-level function taking sanctioned picklable "
                    "arguments (ScannerSpec, WorkerTask, paths, scalars)",
                )
                if violation:
                    violations.append(violation)
        for arg in list(call.args[1:]) + [kw.value for kw in call.keywords]:
            violations.extend(self._check_payload(ctx, arg))
        return violations

    def _check_initargs(
        self, ctx: ModuleContext, call: ast.Call
    ) -> list[Violation]:
        violations: list[Violation] = []
        for keyword in call.keywords:
            if keyword.arg != "initargs":
                continue
            values = (
                list(keyword.value.elts)
                if isinstance(keyword.value, (ast.Tuple, ast.List))
                else [keyword.value]
            )
            for value in values:
                violations.extend(self._check_payload(ctx, value))
        return violations

    def _check_payload(
        self, ctx: ModuleContext, expr: ast.expr
    ) -> list[Violation]:
        verdict, reason = self._classify(ctx, expr, depth=0)
        if verdict is False:
            violation = self._report(
                ctx,
                expr,
                f"process-pool payload {reason}; pass sanctioned "
                "picklables only (ScannerSpec, WorkerTask, paths, "
                "scalars) and re-open heavyweight state worker-side "
                "by path",
            )
            if violation:
                return [violation]
        return []

    def _classify(
        self, ctx: ModuleContext, expr: ast.expr, depth: int
    ) -> tuple[bool | None, str]:
        """(sanctioned?, reason). ``None`` = unknown, never flagged."""
        if depth > 4:
            return None, ""
        if isinstance(expr, ast.Constant):
            return True, ""
        if isinstance(expr, ast.Lambda):
            return False, "is a lambda (closure capture)"
        if isinstance(expr, (ast.Tuple, ast.List, ast.Set)):
            for element in expr.elts:
                verdict, reason = self._classify(ctx, element, depth + 1)
                if verdict is False:
                    return False, reason
            return True, ""
        if isinstance(expr, ast.Starred):
            return self._classify(ctx, expr.value, depth + 1)
        if isinstance(expr, ast.Call):
            name = _call_name(expr)
            func = expr.func
            if (
                isinstance(func, ast.Attribute)
                and isinstance(func.value, ast.Name)
                and func.value.id in ("np", "numpy")
            ):
                return False, f"is a numpy object from np.{func.attr}(...)"
            if name in _BANNED_PRODUCERS:
                return False, f"comes from {name}(...) (unpicklable handle)"
            if name in SANCTIONED_PICKLABLE:
                return True, ""
            return None, ""
        if isinstance(expr, ast.Name):
            return self._classify_name(ctx, expr, depth)
        attr = _self_attribute(expr)
        if attr is not None:
            return self._classify_self_attr(ctx, expr, attr, depth)
        return None, ""

    def _classify_name(
        self, ctx: ModuleContext, expr: ast.Name, depth: int
    ) -> tuple[bool | None, str]:
        function = ctx.enclosing_function(expr)
        if function is None:
            return None, ""
        verdict = self._classify_annotated_param(function, expr.id)
        if verdict is not None:
            return verdict
        for node in ast.walk(function):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == expr.id:
                    inner, reason = self._classify(ctx, node.value, depth + 1)
                    if inner is not None:
                        return inner, reason or f"({expr.id!r}) {reason}"
        return None, ""

    def _classify_annotated_param(
        self, function: ast.AST, name: str
    ) -> tuple[bool, str] | None:
        args = function.args  # type: ignore[attr-defined]
        for argument in [*args.posonlyargs, *args.args, *args.kwonlyargs]:
            if argument.arg != name or argument.annotation is None:
                continue
            dump = ast.dump(argument.annotation)
            for banned in _BANNED_ANNOTATIONS:
                if banned in dump:
                    return False, (
                        f"({name!r}) is annotated {banned}, which must "
                        "not cross the process boundary"
                    )
            for fine in _SANCTIONED_ANNOTATIONS:
                if f"'{fine}'" in dump:
                    return True, ""
        return None

    def _classify_self_attr(
        self, ctx: ModuleContext, expr: ast.expr, attr: str, depth: int
    ) -> tuple[bool | None, str]:
        klass = self._enclosing_class(ctx, expr)
        if klass is None:
            return None, ""
        init = next(
            (
                stmt
                for stmt in klass.body
                if isinstance(stmt, ast.FunctionDef)
                and stmt.name == "__init__"
            ),
            None,
        )
        if init is None:
            return None, ""
        for node in ast.walk(init):
            value: ast.expr | None = None
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                value, targets = node.value, list(node.targets)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                value, targets = node.value, [node.target]
            else:
                continue
            for target in targets:
                if _self_attribute(target) == attr:
                    if isinstance(value, ast.Name):
                        verdict = self._classify_annotated_param(
                            init, value.id
                        )
                        if verdict is not None:
                            return verdict
                        return None, ""
                    return self._classify(ctx, value, depth + 1)
        return None, ""

    def _enclosing_class(
        self, ctx: ModuleContext, node: ast.AST
    ) -> ast.ClassDef | None:
        current = ctx.parents.get(node)
        while current is not None:
            if isinstance(current, ast.ClassDef):
                return current
            current = ctx.parents.get(current)
        return None


class FutureTimeoutRule(Rule):
    """R9: ``Future.result()`` always passes a timeout.

    A timeout-less ``result()`` waits forever on a worker that died
    without completing its future — a hung gather is strictly worse
    than a loud ``TimeoutError``. The rule taints every name assigned
    from a ``.submit(...)`` expression (including dict-keyed gathers
    like ``slots[pool.submit(...)] = job`` and loop targets iterating a
    tainted collection) plus anything named like a future, then flags
    tainted ``.result()`` calls carrying neither a positional deadline
    nor ``timeout=``. Deadline-managed gathers that intentionally block
    forever must say why: ``# reprolint: disable=R9``.
    """

    id = "R9"
    title = "Future.result() must pass a timeout"
    scopes = _LIBRARY

    def check(self, ctx: ModuleContext) -> list[Violation]:
        violations: list[Violation] = []
        functions = [
            node
            for node in ast.walk(ctx.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        for function in functions:
            violations.extend(self._check_function(ctx, function))
        return violations

    def _check_function(
        self, ctx: ModuleContext, function: ast.AST
    ) -> list[Violation]:
        tainted = self._tainted_names(function)
        violations: list[Violation] = []
        for node in ast.walk(function):
            if ctx.enclosing_function(node) is not function:
                continue
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "result"
            ):
                continue
            if node.args or any(kw.arg == "timeout" for kw in node.keywords):
                continue
            if not self._is_future(node.func.value, tainted):
                continue
            violation = self._report(
                ctx,
                node,
                "Future.result() without a timeout can hang forever on a "
                "dead worker; pass timeout=<deadline> (or justify a "
                "deadline-managed gather with '# reprolint: disable=R9')",
            )
            if violation:
                violations.append(violation)
        return violations

    def _tainted_names(self, function: ast.AST) -> set[str]:
        tainted: set[str] = set()
        for _ in range(3):  # small fixpoint: submit -> container -> loop var
            before = len(tainted)
            for node in ast.walk(function):
                if isinstance(node, ast.Assign):
                    if self._contains_submit(node.value) or any(
                        self._contains_submit(target)
                        for target in node.targets
                    ):
                        for target in node.targets:
                            self._taint_target(target, tainted)
                    elif self._mentions_tainted(node.value, tainted):
                        for target in node.targets:
                            self._taint_target(target, tainted)
                elif isinstance(node, ast.For):
                    if self._mentions_tainted(node.iter, tainted):
                        self._taint_target(node.target, tainted)
                elif isinstance(node, ast.comprehension):
                    if self._contains_submit(node.iter) or self._mentions_tainted(
                        node.iter, tainted
                    ):
                        self._taint_target(node.target, tainted)
            if len(tainted) == before:
                break
        return tainted

    def _taint_target(self, target: ast.expr, tainted: set[str]) -> None:
        if isinstance(target, ast.Name):
            tainted.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._taint_target(element, tainted)
        elif isinstance(target, ast.Subscript):
            self._taint_target(target.value, tainted)

    def _contains_submit(self, expr: ast.expr) -> bool:
        return any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "submit"
            for node in ast.walk(expr)
        )

    def _mentions_tainted(self, expr: ast.expr, tainted: set[str]) -> bool:
        return any(
            isinstance(node, ast.Name) and node.id in tainted
            for node in ast.walk(expr)
        )

    def _is_future(self, receiver: ast.expr, tainted: set[str]) -> bool:
        if self._contains_submit(receiver):
            return True
        hint = _receiver_hint(receiver)
        if any(mark in hint for mark in _FUTUREISH):
            return True
        if isinstance(receiver, ast.Name):
            return receiver.id in tainted
        return False


def concurrency_rules() -> list[Rule]:
    """The concurrency rules in id order."""
    return [
        GuardedStateRule(),
        LockDisciplineRule(),
        ProcessPoolPickleRule(),
        FutureTimeoutRule(),
    ]
