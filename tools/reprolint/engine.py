"""reprolint engine: file discovery, pragmas, rule dispatch, reporting.

The checker walks Python sources, parses each file once, runs dtype
inference (:mod:`tools.reprolint.inference`) and dispatches the rule
classes of :mod:`tools.reprolint.rules`. Each rule decides from the
file's path whether it applies (scopes follow the contracts' homes:
saturation rules live in ``repro/core`` and ``repro/simd/kernels``,
narrowing rules in the typed packages, the assert rule library-wide).

Justification pragmas are line comments of the form::

    codes = packed & 0x0F  # reprolint: narrowing=exact
    for row in rows:       # reprolint: loop=setup
    something_odd()        # reprolint: disable=R1,R3

A pragma applies to every physical line its statement spans, so
multi-line expressions can carry the comment on any of their lines.
``narrowing=`` must name the rounding direction of the cast —
``floor`` (table entries), ``ceil`` (thresholds) or ``exact`` (the
value set provably fits the target dtype).
"""

from __future__ import annotations

import ast
import json
import re
import sys
from dataclasses import dataclass
from pathlib import Path

from .inference import ModuleInference

__all__ = [
    "Violation",
    "Pragmas",
    "ModuleContext",
    "check_file",
    "run",
    "iter_python_files",
    "NARROWING_JUSTIFICATIONS",
]

#: Accepted values of the ``narrowing=`` justification pragma.
NARROWING_JUSTIFICATIONS = ("floor", "ceil", "exact")

_PRAGMA_RE = re.compile(r"#\s*reprolint:\s*(?P<body>[^#]*)")
_ENTRY_RE = re.compile(r"(?P<key>[A-Za-z_]+)\s*=\s*(?P<value>[^\s,]+)")


@dataclass(frozen=True)
class Violation:
    """One rule violation at a source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}: {self.rule} {self.message}"


class Pragmas:
    """Per-file ``# reprolint:`` pragma map, keyed by physical line."""

    def __init__(self, source: str):
        self._by_line: dict[int, dict[str, str]] = {}
        for lineno, text in enumerate(source.splitlines(), start=1):
            match = _PRAGMA_RE.search(text)
            if not match:
                continue
            entries: dict[str, str] = {}
            for entry in _ENTRY_RE.finditer(match.group("body")):
                entries[entry.group("key")] = entry.group("value")
            if entries:
                self._by_line[lineno] = entries

    def _lines_of(self, node: ast.AST) -> range:
        start = getattr(node, "lineno", 0)
        stop = getattr(node, "end_lineno", start) or start
        return range(start, stop + 1)

    def get(self, node: ast.AST, key: str) -> str | None:
        """Value of pragma ``key`` on any line the node spans."""
        for lineno in self._lines_of(node):
            entries = self._by_line.get(lineno)
            if entries and key in entries:
                return entries[key]
        return None

    def disabled(self, node: ast.AST, rule: str) -> bool:
        """True when ``disable=`` on the node's lines names ``rule``."""
        value = self.get(node, "disable")
        if value is None:
            return False
        return rule in {part.strip() for part in value.split(",")}


class ModuleContext:
    """Everything a rule needs about one file."""

    def __init__(self, path: Path, display_path: str, source: str, tree: ast.Module):
        self.path = path
        self.display_path = display_path
        self.source = source
        self.tree = tree
        self.pragmas = Pragmas(source)
        self._inference: ModuleInference | None = None
        self._parents: dict[ast.AST, ast.AST] | None = None

    @property
    def inference(self) -> ModuleInference:
        if self._inference is None:
            self._inference = ModuleInference(self.tree)
        return self._inference

    @property
    def parents(self) -> dict[ast.AST, ast.AST]:
        if self._parents is None:
            self._parents = {
                child: parent
                for parent in ast.walk(self.tree)
                for child in ast.iter_child_nodes(parent)
            }
        return self._parents

    def enclosing_function(self, node: ast.AST) -> ast.FunctionDef | None:
        """Innermost function definition containing ``node``."""
        current = self.parents.get(node)
        while current is not None:
            if isinstance(current, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return current  # type: ignore[return-value]
            current = self.parents.get(current)
        return None

    def module_all(self) -> list[str]:
        """Names listed in the module's ``__all__`` (empty if absent)."""
        for stmt in self.tree.body:
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(stmt.value, (ast.List, ast.Tuple)):
                        return [
                            element.value
                            for element in stmt.value.elts
                            if isinstance(element, ast.Constant)
                            and isinstance(element.value, str)
                        ]
        return []

    def violation(
        self, rule: str, node: ast.AST, message: str
    ) -> Violation:
        return Violation(
            rule=rule,
            path=self.display_path,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", 0),
            message=message,
        )


def iter_python_files(paths: list[Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``.py`` files."""
    files: set[Path] = set()
    for path in paths:
        if path.is_dir():
            files.update(
                candidate
                for candidate in path.rglob("*.py")
                if "__pycache__" not in candidate.parts
            )
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


def check_file(
    path: Path,
    rules: list,
    *,
    force_all: bool = False,
    base: Path | None = None,
) -> list[Violation]:
    """Run every applicable rule over one file."""
    try:
        display = str(path.relative_to(base)) if base else str(path)
    except ValueError:
        display = str(path)
    source = path.read_text(encoding="utf-8")
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return [
            Violation(
                rule="E000",
                path=display,
                line=exc.lineno or 0,
                col=(exc.offset or 1) - 1,
                message=f"syntax error: {exc.msg}",
            )
        ]
    ctx = ModuleContext(path, display, source, tree)
    marker = path.resolve().as_posix()
    violations: list[Violation] = []
    for rule in rules:
        if force_all or rule.applies(marker):
            violations.extend(rule.check(ctx))
    violations.sort(key=lambda v: (v.path, v.line, v.col, v.rule))
    return violations


def run(
    paths: list[Path],
    *,
    rules: list | None = None,
    force_all: bool = False,
    base: Path | None = None,
) -> list[Violation]:
    """Check all files under ``paths``; returns every violation found."""
    from .rules import default_rules

    active = default_rules() if rules is None else rules
    violations: list[Violation] = []
    for path in iter_python_files(paths):
        violations.extend(
            check_file(path, active, force_all=force_all, base=base)
        )
    return violations


def main(argv: list[str] | None = None) -> int:
    """CLI entry point: ``python -m tools.reprolint [paths...]``."""
    import argparse

    from .rules import default_rules

    parser = argparse.ArgumentParser(
        prog="python -m tools.reprolint",
        description=(
            "AST invariant checker for the PQ Fast Scan numerical-safety "
            "contracts (saturating int8 adds, floor/ceil narrowing "
            "justifications, exception discipline, kernel loop and dtype "
            "annotations). See docs/static_analysis.md."
        ),
    )
    parser.add_argument(
        "paths", nargs="*", default=["src"], help="files or directories to check"
    )
    parser.add_argument(
        "--all-rules",
        action="store_true",
        help="apply every rule to every file, ignoring path scopes",
    )
    parser.add_argument(
        "--rules",
        default=None,
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    parser.add_argument(
        "--list-rules", action="store_true", help="print rule ids and exit"
    )
    parser.add_argument(
        "--strict-empty",
        action="store_true",
        help="exit 2 when no Python files are found (catches mis-typed "
        "CI paths that would otherwise pass vacuously)",
    )
    args = parser.parse_args(argv)

    rules = default_rules()
    if args.list_rules:
        for rule in rules:
            print(f"{rule.id}: {rule.title}")
        return 0
    if args.rules:
        wanted = {part.strip() for part in args.rules.split(",")}
        unknown = wanted - {rule.id for rule in rules}
        if unknown:
            print(f"unknown rule ids: {sorted(unknown)}", file=sys.stderr)
            return 2
        rules = [rule for rule in rules if rule.id in wanted]

    paths = [Path(p) for p in args.paths]
    missing = [p for p in paths if not p.exists()]
    if missing:
        print(f"no such path: {missing[0]}", file=sys.stderr)
        return 2
    files = iter_python_files(paths)
    violations: list[Violation] = []
    for path in files:
        violations.extend(
            check_file(path, rules, force_all=args.all_rules)
        )
    if args.fmt == "json":
        print(
            json.dumps(
                [violation.__dict__ for violation in violations], indent=2
            )
        )
    else:
        for violation in violations:
            print(violation.format())
    print(
        f"reprolint: {len(files)} file(s) checked, "
        f"{len(violations)} violation(s)",
        file=sys.stderr,
    )
    if not files and args.strict_empty:
        print(
            "reprolint: --strict-empty: no Python files found under the "
            "given paths",
            file=sys.stderr,
        )
        return 2
    return 1 if violations else 0
