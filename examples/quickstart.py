"""Quickstart: PQ Fast Scan end to end in ~30 seconds.

Builds a synthetic SIFT-like database, trains a PQ 8x8 product
quantizer, indexes the database with IVFADC, and answers nearest
neighbor queries with PQ Fast Scan — verifying that the results are
*exactly* those of plain PQ Scan while most distance computations are
pruned.

A second pass shows the Quick ADC 4-bit variant at the same 64-bit
code budget: ``EngineConfig(scanner="quickadc")`` with a PQ 16x4
quantizer (two sub-indexes per byte, 16-entry in-register tables).

Run:  python examples/quickstart.py
"""

import time

import numpy as np

from repro import (
    Engine,
    EngineConfig,
    IVFADCIndex,
    NaiveScanner,
    PQFastScanner,
    ProductQuantizer,
    VectorDataset,
)


def main() -> None:
    print("1. Generating a synthetic SIFT-like dataset ...")
    dataset = VectorDataset.synthetic(
        n_learn=20_000, n_base=200_000, n_query=5, seed=7
    )
    print(f"   {dataset.describe()}")

    print("2. Training a PQ 8x8 product quantizer (64-bit codes) ...")
    pq = ProductQuantizer(m=8, bits=8, max_iter=10, seed=0).fit(dataset.learn)
    mse = pq.quantization_error(dataset.base[:2000])
    print(f"   {pq.config_name()}: quantization MSE = {mse:.0f}")

    print("3. Building the IVFADC index (2 partitions) ...")
    index = IVFADCIndex(pq, n_partitions=2, seed=0).add(dataset.base)
    print(f"   partition sizes: {index.partition_sizes().tolist()}")

    print("4. Searching with PQ Fast Scan (keep=0.5%, topk=10) ...")
    fast = PQFastScanner(pq, keep=0.005, seed=0)
    reference = NaiveScanner()
    for qi, query in enumerate(dataset.queries):
        pid = index.route(query)[0]               # Step 1: route
        tables = index.distance_tables_for(query, pid)  # Step 2: tables
        partition = index.partitions[pid]

        t0 = time.perf_counter()
        result = fast.scan(tables, partition, topk=10)  # Step 3: scan
        elapsed = time.perf_counter() - t0

        exact = reference.scan(tables, partition, topk=10)
        assert result.same_neighbors(exact), "exactness violated!"
        print(
            f"   query {qi}: partition {pid} ({len(partition)} vectors), "
            f"pruned {result.pruned_fraction:.1%} of distance "
            f"computations, nearest id {result.ids[0]} "
            f"(d^2={result.distances[0]:.0f}), {elapsed * 1e3:.0f} ms, "
            f"results identical to PQ Scan: "
            f"{result.same_neighbors(exact)}"
        )

    print("\n5. The 4-bit variant: Quick ADC at the same 64-bit code budget.")
    print("   16 sub-quantizers x 4 bits = 64-bit codes, same as the 8x8")
    print("   above; the 16-entry tables fit a SIMD register directly, so")
    print("   every lookup is an exact in-register shuffle.")
    config = EngineConfig(
        m=16, bits=4, scanner="quickadc",
        n_partitions=2, nprobe=2, max_iter=10, seed=0,
    )
    with Engine.build(dataset.base, config) as engine:
        t0 = time.perf_counter()
        results = engine.search(dataset.queries, k=10)
        elapsed = time.perf_counter() - t0
        for qi, result in enumerate(results):
            print(
                f"   query {qi}: nearest id {result.ids[0]} "
                f"(d^2={result.distances[0]:.0f}), "
                f"pruned {result.pruned_fraction:.1%}"
            )
        print(f"   batch of {len(results)} queries in {elapsed * 1e3:.0f} ms")

    print("\nDone. PQ Fast Scan returned byte-identical neighbors while")
    print("skipping the exact distance computation for the vast majority")
    print("of database vectors. The quickadc pass answered the same")
    print("queries from 4-bit codes with direct in-register lookups —")
    print("fewer simulated cycles per code at a small recall cost")
    print("(python -m repro.bench.quickadc quantifies the trade).")


if __name__ == "__main__":
    main()
