"""Quickstart: PQ Fast Scan end to end in ~30 seconds.

Builds a synthetic SIFT-like database, trains a PQ 8x8 product
quantizer, indexes the database with IVFADC, and answers nearest
neighbor queries with PQ Fast Scan — verifying that the results are
*exactly* those of plain PQ Scan while most distance computations are
pruned.

Run:  python examples/quickstart.py
"""

import time

import numpy as np

from repro import (
    IVFADCIndex,
    NaiveScanner,
    PQFastScanner,
    ProductQuantizer,
    VectorDataset,
)


def main() -> None:
    print("1. Generating a synthetic SIFT-like dataset ...")
    dataset = VectorDataset.synthetic(
        n_learn=20_000, n_base=200_000, n_query=5, seed=7
    )
    print(f"   {dataset.describe()}")

    print("2. Training a PQ 8x8 product quantizer (64-bit codes) ...")
    pq = ProductQuantizer(m=8, bits=8, max_iter=10, seed=0).fit(dataset.learn)
    mse = pq.quantization_error(dataset.base[:2000])
    print(f"   {pq.config_name()}: quantization MSE = {mse:.0f}")

    print("3. Building the IVFADC index (2 partitions) ...")
    index = IVFADCIndex(pq, n_partitions=2, seed=0).add(dataset.base)
    print(f"   partition sizes: {index.partition_sizes().tolist()}")

    print("4. Searching with PQ Fast Scan (keep=0.5%, topk=10) ...")
    fast = PQFastScanner(pq, keep=0.005, seed=0)
    reference = NaiveScanner()
    for qi, query in enumerate(dataset.queries):
        pid = index.route(query)[0]               # Step 1: route
        tables = index.distance_tables_for(query, pid)  # Step 2: tables
        partition = index.partitions[pid]

        t0 = time.perf_counter()
        result = fast.scan(tables, partition, topk=10)  # Step 3: scan
        elapsed = time.perf_counter() - t0

        exact = reference.scan(tables, partition, topk=10)
        assert result.same_neighbors(exact), "exactness violated!"
        print(
            f"   query {qi}: partition {pid} ({len(partition)} vectors), "
            f"pruned {result.pruned_fraction:.1%} of distance "
            f"computations, nearest id {result.ids[0]} "
            f"(d^2={result.distances[0]:.0f}), {elapsed * 1e3:.0f} ms, "
            f"results identical to PQ Scan: "
            f"{result.same_neighbors(exact)}"
        )

    print("\nDone. PQ Fast Scan returned byte-identical neighbors while")
    print("skipping the exact distance computation for the vast majority")
    print("of database vectors.")


if __name__ == "__main__":
    main()
