"""Image-retrieval scenario: near-duplicate search in a descriptor store.

The paper's motivating application (Section 1): finding multimedia
objects similar to a query object by searching the nearest neighbors of
its feature vector. This example simulates a content-based image
retrieval deployment:

* a database of SIFT-like descriptors of "catalog images",
* query descriptors that are *distorted copies* of catalog descriptors
  (the near-duplicate detection task),
* an IVFADC index scanned with PQ Fast Scan, evaluated by recall@R
  against exact (brute-force) search and by pruning statistics.

Run:  python examples/image_retrieval.py
"""

import time

import numpy as np

from repro import (
    IVFADCIndex,
    LibpqScanner,
    PQFastScanner,
    ProductQuantizer,
    SyntheticSIFT,
    exact_neighbors,
    recall_at,
)


def make_near_duplicate_queries(
    base: np.ndarray, n_queries: int, noise: float, seed: int
) -> tuple[np.ndarray, np.ndarray]:
    """Pick catalog descriptors and distort them (crop/jpeg analogue)."""
    rng = np.random.default_rng(seed)
    originals = rng.choice(len(base), size=n_queries, replace=False)
    queries = base[originals] + rng.normal(0, noise, (n_queries, base.shape[1]))
    return np.clip(np.rint(queries), 0, 255), originals


def main() -> None:
    print("Building the descriptor catalog ...")
    gen = SyntheticSIFT(seed=21)
    learn = gen.generate(20_000, split="learn")
    base = gen.generate(150_000, split="base")
    queries, originals = make_near_duplicate_queries(
        base, n_queries=30, noise=5.0, seed=3
    )
    print(f"  catalog: {len(base)} descriptors, {len(queries)} "
          f"near-duplicate queries")

    pq = ProductQuantizer(m=8, bits=8, max_iter=10, seed=0).fit(learn)
    index = IVFADCIndex(pq, n_partitions=4, seed=0).add(base)
    fast = PQFastScanner(pq, keep=0.005, seed=0)
    libpq = LibpqScanner()

    print("Searching (topk=100, nprobe=1) ...")
    found = np.full((len(queries), 100), -1, dtype=np.int64)
    pruned = []
    t_fast = t_ref = 0.0
    for qi, query in enumerate(queries):
        pid = index.route(query)[0]
        tables = index.distance_tables_for(query, pid)
        partition = index.partitions[pid]
        t0 = time.perf_counter()
        result = fast.scan(tables, partition, topk=100)
        t_fast += time.perf_counter() - t0
        t0 = time.perf_counter()
        reference = libpq.scan(tables, partition, topk=100)
        t_ref += time.perf_counter() - t0
        assert result.same_neighbors(reference)
        found[qi, : len(result.ids)] = result.ids
        pruned.append(result.pruned_fraction)

    truth, _ = exact_neighbors(base, queries, k=1)
    r1 = recall_at(found, truth, r=1)
    r100 = recall_at(found, truth, r=100)
    dup_hits = float(np.mean(found[:, 0] == originals))

    print(f"\n  recall@1   vs exact search: {r1:.2f}")
    print(f"  recall@100 vs exact search: {r100:.2f}")
    print(f"  near-duplicate found at rank 1: {dup_hits:.2f}")
    print(f"  mean pruned distance computations: {np.mean(pruned):.1%}")
    print(f"  numpy wall time, fast scan: {t_fast:.2f}s / "
          f"PQ scan: {t_ref:.2f}s")
    print("\n(Results are identical between PQ Fast Scan and PQ Scan by")
    print(" construction; on real SIMD hardware the pruned fraction turns")
    print(" into the paper's 4-6x speedup — see the simulator example.)")


if __name__ == "__main__":
    main()
