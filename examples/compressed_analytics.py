"""Small-table techniques beyond ANN: compressed-database analytics.

Section 6 of the paper argues that register-resident lookup tables apply
to query execution over dictionary-compressed columns. This example
builds a compressed "product" fact table and runs:

* an exact-result top-k scoring query accelerated by register-sized
  **maximum tables** (upper bounds prune rows that cannot reach the
  current k-th best score), and
* approximate aggregates computed from 16-entry **mean tables** with an
  a-priori error bound.

Run:  python examples/compressed_analytics.py
"""

import numpy as np

from repro.compressed import (
    ApproximateAggregator,
    DictionaryColumn,
    TopKScoreScanner,
)


def main() -> None:
    rng = np.random.default_rng(99)
    n = 500_000
    print(f"Compressing a {n}-row fact table to one byte per value ...")
    revenue = rng.lognormal(4.5, 1.2, n)
    margin = rng.beta(2, 5, n) * 80
    popularity = rng.poisson(30, n).astype(float)
    columns = [
        DictionaryColumn.compress("revenue", revenue),
        DictionaryColumn.compress("margin", margin),
        DictionaryColumn.compress("popularity", popularity),
    ]
    raw_bytes = 8 * 3 * n
    compressed_bytes = sum(c.nbytes for c in columns)
    print(f"  {raw_bytes / 2**20:.1f} MiB of float64 -> "
          f"{compressed_bytes / 2**20:.1f} MiB compressed "
          f"({raw_bytes / compressed_bytes:.1f}x)")

    print("\nTop-20 rows by score = revenue + 2*margin + 0.5*popularity")
    scanner = TopKScoreScanner(columns, weights=np.array([1.0, 2.0, 0.5]))
    exact = scanner.scan_exact(20)
    fast = scanner.scan_fast(20)
    assert fast.same_rows(exact), "pruned scan changed the result!"
    print(f"  exact scan:  scored all {n} rows")
    print(f"  fast scan:   pruned {fast.pruned_fraction:.1%} of rows with "
          f"16-entry maximum tables — identical top-20")
    print(f"  best rows: {fast.rows[:5].tolist()} "
          f"(scores {np.round(fast.scores[:5], 1).tolist()})")

    print("\nApproximate aggregates from 16-entry mean tables")
    for col in columns:
        agg = ApproximateAggregator(col)
        est = agg.mean()
        print(f"  mean({col.name:10s}) ~= {est.value:10.2f}   "
              f"exact {est.exact:10.2f}   error {est.error:8.4f} "
              f"(bound {est.max_error:7.2f})")
    print("\nBoth techniques read only the high nibble of each code —")
    print("half the index bits — and their tables fit one SIMD register,")
    print("exactly the transformation PQ Fast Scan applies to distance")
    print("tables.")


if __name__ == "__main__":
    main()
