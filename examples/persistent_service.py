"""A small search service lifecycle: build offline, save, reload, serve.

Demonstrates the deployment-facing API: offline training and encoding,
persistence to a single artifact, reload in a fresh "serving process",
and query answering through :class:`repro.ANNSearcher` with exact
re-ranking of the shortlist.

Run:  python examples/persistent_service.py
"""

import tempfile
import time
from pathlib import Path

import numpy as np

from repro import (
    ANNSearcher,
    IVFADCIndex,
    PQFastScanner,
    ProductQuantizer,
    VectorDataset,
    exact_neighbors,
    load_index,
    recall_at,
    save_index,
)


def build_offline(dataset: VectorDataset, artifact: Path) -> None:
    """The offline job: train, encode, persist."""
    print("[offline] training PQ 8x8 and building the IVFADC index ...")
    pq = ProductQuantizer(m=8, bits=8, max_iter=10, seed=0).fit(dataset.learn)
    index = IVFADCIndex(pq, n_partitions=4, seed=0).add(dataset.base)
    save_index(index, artifact)
    print(f"[offline] saved {len(index)} vectors -> {artifact} "
          f"({artifact.stat().st_size / 2**20:.1f} MiB)")


def serve(dataset: VectorDataset, artifact: Path) -> None:
    """The serving process: reload and answer queries."""
    t0 = time.perf_counter()
    index = load_index(artifact)
    print(f"[serve] index loaded in {time.perf_counter() - t0:.2f}s")
    searcher = ANNSearcher(
        index,
        scanner=PQFastScanner(index.pq, keep=0.005, seed=0),
        vectors=dataset.base,  # enables exact re-ranking
    )

    truth, _ = exact_neighbors(dataset.base, dataset.queries, k=1)
    found_plain, found_rerank = [], []
    for query in dataset.queries:
        plain = searcher.search(query, topk=10, nprobe=2)
        reranked = searcher.search(query, topk=10, nprobe=2, rerank=200)
        found_plain.append(plain.ids)
        found_rerank.append(reranked.ids)
    r_plain = recall_at(np.array(found_plain), truth, r=1)
    r_rerank = recall_at(np.array(found_rerank), truth, r=1)
    r10 = recall_at(np.array(found_rerank), truth, r=10)
    print(f"[serve] recall@1: ADC order {r_plain:.2f} -> "
          f"re-ranked {r_rerank:.2f} (recall@10 {r10:.2f})")
    print("[serve] re-ranking recovers the precision the 8-byte codes")
    print("        compress away, at the cost of 200 exact distances.")


def main() -> None:
    dataset = VectorDataset.synthetic(15_000, 100_000, 25, seed=11)
    with tempfile.TemporaryDirectory() as tmp:
        artifact = Path(tmp) / "catalog.npz"
        build_offline(dataset, artifact)
        serve(dataset, artifact)


if __name__ == "__main__":
    main()
