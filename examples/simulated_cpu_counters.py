"""Inspect the micro-architectural story with the cycle-level simulator.

Reproduces the paper's core performance narrative interactively:

1. the four PQ Scan implementations (naive, libpq, AVX, gather) and why
   none of them beats the naive loop (Section 3 / Figure 3),
2. PQ Fast Scan's counters and its 4-6x speedup (Figures 14-15),
3. the speedup across four CPU generations (Figure 20 / Table 5).

Run:  python examples/simulated_cpu_counters.py
"""

import numpy as np

from repro import IVFADCIndex, Partition, PQFastScanner, ProductQuantizer, VectorDataset
from repro.simd import SCAN_KERNELS, fastscan_kernel, simulate_pq_scan


def main() -> None:
    print("Preparing a workload sample ...")
    dataset = VectorDataset.synthetic(15_000, 60_000, 1, seed=5)
    pq = ProductQuantizer(m=8, bits=8, max_iter=8, seed=0).fit(dataset.learn)
    index = IVFADCIndex(pq, n_partitions=2, seed=0).add(dataset.base)
    query = dataset.queries[0]
    pid = index.route(query)[0]
    tables = index.distance_tables_for(query, pid)
    partition = index.partitions[pid]
    sample = Partition(partition.codes[:10_000], partition.ids[:10_000], pid)

    print(f"\n--- PQ Scan implementations (simulated Haswell, "
          f"{len(sample)} vectors) ---")
    header = (f"{'impl':8s} {'cycles/v':>9s} {'instr/v':>8s} {'uops/v':>7s} "
              f"{'L1/v':>6s} {'IPC':>5s}")
    print(header)
    runs = {}
    for name in SCAN_KERNELS:
        run = simulate_pq_scan(name, "haswell", tables, sample.codes)
        runs[name] = run
        pv = run.counters.per_vector(run.n_vectors)
        print(f"{name:8s} {pv.cycles:9.1f} {pv.instructions:8.1f} "
              f"{pv.uops:7.1f} {pv.l1_loads:6.1f} {pv.ipc:5.2f}")
    print("-> despite 9 loads instead of 16, libpq is no faster; gather's")
    print("   34 uops and 10-cycle throughput starve the pipeline.")

    print("\n--- PQ Fast Scan (register-resident small tables) ---")
    scanner = PQFastScanner(pq, keep=0.005, seed=0)
    grouped = scanner.prepare(sample)
    tables_r = scanner.assignment.remap_tables(tables)
    fast = fastscan_kernel("haswell", tables_r, grouped, topk=100, keep=0.005)
    pv = fast.counters.per_vector(fast.n_vectors)
    print(f"{'fastpq':8s} {pv.cycles:9.2f} {pv.instructions:8.2f} "
          f"{pv.uops:7.2f} {pv.l1_loads:6.2f} {pv.ipc:5.2f}")
    print(f"   pruned {fast.n_pruned / fast.n_vectors:.1%} of vectors; "
          f"speedup vs libpq = "
          f"{runs['libpq'].cycles_per_vector / fast.cycles_per_vector:.1f}x")

    print("\n--- Scan speed across CPU generations (Table 5) ---")
    for letter, label in (("A", "Haswell 2014"), ("B", "Ivy Bridge 2013"),
                          ("C", "Sandy Bridge 2012"), ("D", "Nehalem 2009")):
        libpq = simulate_pq_scan("libpq", letter, tables, sample.codes[:4000])
        fast = fastscan_kernel(letter, tables_r, grouped, topk=100, keep=0.005)
        print(f"  {label:18s} libpq {libpq.scan_speed / 1e6:7.0f} M vecs/s   "
              f"fastpq {fast.scan_speed / 1e6:7.0f} M vecs/s   "
              f"({libpq.cycles_per_vector / fast.cycles_per_vector:.1f}x)")
    print("\nPQ Fast Scan needs nothing newer than SSSE3 (2006), so the")
    print("speedup holds on every generation — the paper's Figure 20.")


if __name__ == "__main__":
    main()
